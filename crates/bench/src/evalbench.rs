//! `repro eval-bench`: the verification-engine throughput artifact.
//!
//! Runs the auto-tuner over the focus variables through the pipelined
//! driver (`Evaluation::map_contexts` + the batched candidate sweep)
//! with span recording forced on, and distills the trace into an `eval`
//! JSON section: member-synthesis and verdict rates, per-variable tune
//! wall time, and the per-stage self-time profile. Appending the section
//! to an existing `BENCH.json` bumps the schema additively to
//! `cc-bench-throughput/7`; serve and tune sections of either shape ride
//! along unchanged. The merged document is re-validated before being
//! returned.
//!
//! Unlike the `tune` section, the rates here are wall-clock measurements
//! and vary run to run — `bench-check --against` holds them to the same
//! tolerance floor as the codec throughput comparison.

use cc_core::evaluation::Evaluation;
use cc_core::tuning::{tune_variable, TuneReport};
use cc_obs::json::{self, Value};
use cc_obs::trace::TraceReport;
use std::time::Instant;

/// Per-stage self-time row, aggregated from the run's span tree.
#[derive(Debug, Clone)]
pub struct EvalStage {
    /// Span name (`eval.member_synth`, `eval.sample`, ...).
    pub name: String,
    /// Number of spans recorded under this name.
    pub calls: u64,
    /// Summed self time (wall minus direct children), in milliseconds.
    pub self_ms: f64,
}

/// Per-variable tuning wall time.
#[derive(Debug, Clone)]
pub struct EvalVariable {
    /// Variable name.
    pub name: String,
    /// Wall-clock seconds spent scoring this variable's candidate space
    /// (context build overlaps the previous variable and is excluded).
    pub tune_wall_s: f64,
}

/// Everything `repro eval-bench` measured, ready to land in `BENCH.json`.
#[derive(Debug, Clone)]
pub struct EvalArtifact {
    /// Preset label ("quick", "default", ...).
    pub preset: String,
    /// Worker-pool width the sweep ran at.
    pub workers: usize,
    /// Ensemble size.
    pub members: usize,
    /// Members synthesized per second of synthesis CPU time (span
    /// self-time, so the rate is comparable across worker counts).
    pub synth_members_per_s: f64,
    /// Candidate verdicts produced per wall-clock second.
    pub verdicts_per_s: f64,
    /// Total wall-clock seconds for the whole tuning sweep, context
    /// builds included.
    pub tune_wall_s: f64,
    /// Per-variable wall times, in sweep order.
    pub variables: Vec<EvalVariable>,
    /// Per-stage self-time profile, largest first.
    pub stages: Vec<EvalStage>,
    /// The tune report the measurement produced (for printing; not part
    /// of the JSON section).
    pub report: TuneReport,
}

/// Run the tuning sweep over `vars` with spans forced on and distill the
/// timings. The sweep runs on a scoped helper thread so its spans land
/// as that thread's roots even when the caller holds an open span (e.g.
/// `repro --trace` wraps experiments in `exp.*`).
pub fn run(eval: &Evaluation, vars: &[usize], preset: &str) -> EvalArtifact {
    let spans_were = cc_obs::spans_enabled();
    cc_obs::set_spans_enabled(true);
    let (tuned, walls, total_wall, spans) = std::thread::scope(|s| {
        s.spawn(|| {
            let t0 = Instant::now();
            let tuned = eval.map_contexts(vars, |ctx| {
                let v0 = Instant::now();
                let tv = tune_variable(ctx);
                (tv, v0.elapsed().as_secs_f64())
            });
            let total = t0.elapsed().as_secs_f64();
            let (tuned, walls): (Vec<_>, Vec<_>) = tuned.into_iter().unzip();
            (tuned, walls, total, cc_obs::take_local_roots())
        })
        .join()
        .expect("eval-bench sweep thread")
    });
    cc_obs::set_spans_enabled(spans_were);

    let report = TraceReport { spans, metrics: Default::default() };
    let mut stages: Vec<EvalStage> = report
        .summary()
        .into_iter()
        .map(|s| EvalStage {
            name: s.name,
            calls: s.calls,
            self_ms: s.self_ns as f64 / 1e6,
        })
        .collect();
    stages.sort_by(|a, b| b.self_ms.total_cmp(&a.self_ms).then(a.name.cmp(&b.name)));
    stages.truncate(16);

    let synth = stages.iter().find(|s| s.name == "eval.member_synth");
    let synth_members_per_s = synth
        .filter(|s| s.self_ms > 0.0)
        .map(|s| s.calls as f64 / (s.self_ms / 1e3))
        .unwrap_or(0.0);
    let verdicts: usize = tuned.iter().map(|t| t.candidates).sum();
    let verdicts_per_s =
        if total_wall > 0.0 { verdicts as f64 / total_wall } else { 0.0 };

    let variables = tuned
        .iter()
        .zip(&walls)
        .map(|(t, &w)| EvalVariable { name: t.name.clone(), tune_wall_s: w.max(1e-9) })
        .collect();
    EvalArtifact {
        preset: preset.to_string(),
        workers: eval.config.workers,
        members: eval.config.members,
        synth_members_per_s,
        verdicts_per_s,
        tune_wall_s: total_wall.max(1e-9),
        variables,
        stages,
        report: TuneReport { variables: tuned },
    }
}

impl EvalArtifact {
    /// The `eval` section as a JSON value.
    pub fn to_value(&self) -> Value {
        let vars: Vec<String> = self
            .variables
            .iter()
            .map(|v| {
                format!(
                    "{{\"name\": {}, \"tune_wall_s\": {:.6}}}",
                    json_str(&v.name),
                    v.tune_wall_s
                )
            })
            .collect();
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": {}, \"calls\": {}, \"self_ms\": {:.3}}}",
                    json_str(&s.name),
                    s.calls,
                    s.self_ms
                )
            })
            .collect();
        let text = format!(
            "{{\"preset\": {}, \"workers\": {}, \"members\": {}, \
             \"synth_members_per_s\": {:.3}, \"verdicts_per_s\": {:.3}, \
             \"tune_wall_s\": {:.6}, \"variables\": [{}], \"stages\": [{}]}}",
            json_str(&self.preset),
            self.workers,
            self.members,
            self.synth_members_per_s,
            self.verdicts_per_s,
            self.tune_wall_s,
            vars.join(", "),
            stages.join(", ")
        );
        json::parse(&text).expect("eval section serializes to valid JSON")
    }

    /// Merge the section into an existing `BENCH.json` document: set the
    /// `eval` section and bump the schema additively to
    /// `cc-bench-throughput/7` (serve and tune sections ride along; the
    /// `/7` validator accepts either serve shape). Returns the
    /// re-validated document.
    pub fn merge_into_bench(&self, bench_text: &str) -> Result<String, Vec<String>> {
        let mut doc = json::parse(bench_text)
            .map_err(|e| vec![format!("existing BENCH.json is not valid JSON: {e}")])?;
        let Some(schema) = doc.get("schema").and_then(Value::as_str) else {
            return Err(vec!["existing BENCH.json has no schema field".into()]);
        };
        if schema != "cc-bench-throughput/8" {
            doc.set("schema", Value::Str("cc-bench-throughput/7".into()));
        }
        doc.set("eval", self.to_value());
        let merged = doc.to_json();
        crate::throughput::validate(&merged)?;
        Ok(merged)
    }
}

/// Minimal JSON string encoding (same contract as `tune::json_str`).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::evaluation::EvalConfig;
    use cc_grid::Resolution;
    use cc_model::Model;

    fn tiny_artifact() -> EvalArtifact {
        let model = Model::new(Resolution::reduced(2, 2), 13);
        let eval = Evaluation::new(model, EvalConfig::quick(9));
        let vars = vec![eval.model.var_id("U").unwrap()];
        run(&eval, &vars, "quick")
    }

    #[test]
    fn eval_section_merges_into_bench_as_v7() {
        let artifact = tiny_artifact();
        assert!(artifact.synth_members_per_s > 0.0, "no synthesis rate measured");
        assert!(artifact.verdicts_per_s > 0.0);
        assert_eq!(artifact.variables.len(), 1);
        assert!(
            artifact.stages.iter().any(|s| s.name == "eval.sample"),
            "stage profile missing eval.sample: {:?}",
            artifact.stages
        );

        let base = crate::throughput::run(
            &crate::throughput::BenchConfig {
                npts: 2_048,
                nlev: 1,
                worker_counts: vec![1, 2],
                reps: 1,
                preset: "quick".into(),
            },
            &mut |_| {},
        );
        let merged = artifact.merge_into_bench(&base.to_json()).expect("merge");
        let doc = json::parse(&merged).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("cc-bench-throughput/7")
        );
        let stages = doc
            .get("eval")
            .and_then(|e| e.get("stages"))
            .and_then(Value::as_array)
            .expect("eval.stages");
        assert!(!stages.is_empty());

        // A schema-less document refuses the merge.
        assert!(artifact.merge_into_bench("{}").is_err());
    }

    #[test]
    fn tune_section_rides_along_on_v7() {
        // eval appended after tune keeps both sections valid at /7.
        let model = Model::new(Resolution::reduced(2, 2), 13);
        let eval = Evaluation::new(model, EvalConfig::quick(9));
        let vars = vec![eval.model.var_id("U").unwrap()];
        let tune = crate::tune::TuneArtifact {
            preset: "quick".into(),
            report: TuneReport::build(&eval, &vars),
        };
        let base = crate::throughput::run(
            &crate::throughput::BenchConfig {
                npts: 2_048,
                nlev: 1,
                worker_counts: vec![1, 2],
                reps: 1,
                preset: "quick".into(),
            },
            &mut |_| {},
        );
        let with_tune = tune.merge_into_bench(&base.to_json()).expect("tune merge");
        let artifact = run(&eval, &vars, "quick");
        let merged = artifact.merge_into_bench(&with_tune).expect("eval merge");
        let doc = json::parse(&merged).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("cc-bench-throughput/7")
        );
        assert!(doc.get("tune").is_some() && doc.get("eval").is_some());

        // And tune merged *after* eval preserves the /7 level.
        let reversed = tune.merge_into_bench(&merged).expect("tune onto /7");
        let doc = json::parse(&reversed).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("cc-bench-throughput/7")
        );
    }

    #[test]
    fn eval_compare_flags_regressions() {
        let artifact = tiny_artifact();
        let base = crate::throughput::run(
            &crate::throughput::BenchConfig {
                npts: 2_048,
                nlev: 1,
                worker_counts: vec![1, 2],
                reps: 1,
                preset: "quick".into(),
            },
            &mut |_| {},
        );
        let merged = artifact.merge_into_bench(&base.to_json()).expect("merge");
        // Same document on both sides: everything passes.
        let rows = crate::throughput::compare_eval(&merged, &merged, 0.25)
            .expect("both documents carry eval sections");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.pass));
        let (_, fails) = crate::throughput::render_eval_compare(&rows);
        assert_eq!(fails, 0);

        // A baseline with 10x our rates fails both.
        let mut doc = json::parse(&merged).unwrap();
        let mut eval_sec = doc.get("eval").unwrap().clone();
        for key in ["synth_members_per_s", "verdicts_per_s"] {
            let v = eval_sec.get(key).and_then(Value::as_f64).unwrap();
            eval_sec.set(key, Value::Num(v * 10.0));
        }
        doc.set("eval", eval_sec);
        let inflated = doc.to_json();
        let rows = crate::throughput::compare_eval(&merged, &inflated, 0.25).unwrap();
        assert!(rows.iter().all(|r| !r.pass));
        let (table, fails) = crate::throughput::render_eval_compare(&rows);
        assert_eq!(fails, 2);
        assert!(table.contains("REGRESSED"));

        // No eval section on one side: no comparison.
        assert!(crate::throughput::compare_eval(&merged, &base.to_json(), 0.25).is_none());
    }
}
