//! `repro serve-bench`: loopback throughput of the `cc-serve` daemon.
//!
//! Starts an in-process server per worker count, drives it with N
//! concurrent client threads issuing pipelined `Compress` requests, and
//! reports requests/second plus latency percentiles read from the
//! server's own `serve.req_us` histogram (log2 buckets, diffed across
//! the run — the same telemetry `--trace` exports). The result merges
//! into an existing `BENCH.json` as a `serve` section, bumping the
//! schema additively to `cc-bench-throughput/3`
//! (see [`crate::throughput`] for the base document).
//!
//! ```json
//! "serve": {
//!   "clients": N, "requests_per_client": N, "pipeline_depth": N,
//!   "payload_elems": N,
//!   "runs": [
//!     {"workers": 1, "requests": N, "req_per_s": X,
//!      "p50_us": N, "p99_us": N, "busy_rate": X}, ...
//!   ]
//! }
//! ```

use crate::throughput::bench_field;
use cc_obs::json::{self, Value};
use cc_serve::wire::{CompressRequest, Opcode};
use cc_serve::{Client, Server, ServerConfig};
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Server worker counts to sweep (the schema requires >= 2).
    pub worker_counts: Vec<usize>,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued by each client.
    pub requests_per_client: usize,
    /// Requests in flight per client (pipelining batch size).
    pub pipeline_depth: usize,
    /// Horizontal points of the compressed payload field.
    pub npts: usize,
    /// Vertical levels of the payload field.
    pub nlev: usize,
}

impl ServeBenchConfig {
    /// CI smoke scale.
    pub fn quick() -> Self {
        ServeBenchConfig {
            worker_counts: vec![1, 2],
            clients: 4,
            requests_per_client: 8,
            pipeline_depth: 4,
            npts: 4_096,
            nlev: 2,
        }
    }

    /// Default scale: the worker sweep the acceptance criterion is
    /// stated against (1 and 8 workers), 16 clients.
    pub fn default_scale() -> Self {
        ServeBenchConfig {
            worker_counts: vec![1, 2, 8],
            clients: 16,
            requests_per_client: 16,
            pipeline_depth: 4,
            npts: 16_384,
            nlev: 2,
        }
    }
}

/// One worker-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct ServeRun {
    /// Server worker threads.
    pub workers: usize,
    /// Requests completed.
    pub requests: u64,
    /// Requests per second (wall clock across all clients).
    pub req_per_s: f64,
    /// Median request-handling latency, µs (log2-bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile request-handling latency, µs.
    pub p99_us: u64,
    /// `Busy` responses per accepted connection over the run.
    pub busy_rate: f64,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Configuration used.
    pub config: ServeBenchConfig,
    /// One entry per worker count.
    pub runs: Vec<ServeRun>,
}

/// Latency percentile from a log2-bucket count delta: the upper bound
/// `2^i` of the bucket where the cumulative count crosses `q`.
fn percentile_us(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        cum += n;
        if cum >= target {
            return if i == 0 { 0 } else { 1u64 << i };
        }
    }
    1u64 << (buckets.len() - 1)
}

/// Dense per-bucket counts of a histogram snapshot.
fn dense_buckets(snap: &cc_obs::HistogramSnapshot) -> Vec<u64> {
    let mut out = vec![0u64; cc_obs::HIST_BUCKETS];
    for &(i, n) in &snap.buckets {
        out[i as usize] = n;
    }
    out
}

/// Run the sweep. `progress` receives one line per worker count.
pub fn run(config: &ServeBenchConfig, progress: &mut dyn FnMut(&str)) -> ServeBenchReport {
    let (data, layout) = bench_field(config.npts, config.nlev);
    let mut runs = Vec::new();
    for &workers in &config.worker_counts {
        let server = Server::start(ServerConfig {
            workers,
            // Deep enough that this throughput run measures service
            // time, not admission-control rejections.
            queue_depth: (config.clients * 2).max(8),
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let addr = server.addr().to_string();

        let hist_before = dense_buckets(&cc_obs::histogram("serve.req_us").snapshot());
        let busy_before = cc_obs::counter_value("serve.busy");
        let accept_before = cc_obs::counter_value("serve.accept");

        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..config.clients {
                let addr = &addr;
                let data = &data;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let req = CompressRequest {
                        variant: "fpzip-24".to_string(),
                        layout,
                        data: data.clone(),
                    };
                    let payload = req.encode();
                    let mut remaining = config.requests_per_client;
                    while remaining > 0 {
                        let batch = remaining.min(config.pipeline_depth.max(1));
                        let reqs: Vec<(Opcode, Vec<u8>)> =
                            (0..batch).map(|_| (Opcode::Compress, payload.clone())).collect();
                        let results = client.pipeline(&reqs).expect("pipeline");
                        for r in results {
                            r.expect("compress succeeds");
                        }
                        remaining -= batch;
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        server.shutdown();

        let hist_after = dense_buckets(&cc_obs::histogram("serve.req_us").snapshot());
        let delta: Vec<u64> =
            hist_after.iter().zip(&hist_before).map(|(a, b)| a.saturating_sub(*b)).collect();
        let requests = (config.clients * config.requests_per_client) as u64;
        let accepts = cc_obs::counter_value("serve.accept").saturating_sub(accept_before);
        let busy = cc_obs::counter_value("serve.busy").saturating_sub(busy_before);
        let run = ServeRun {
            workers,
            requests,
            req_per_s: requests as f64 / secs.max(1e-9),
            p50_us: percentile_us(&delta, 0.50),
            p99_us: percentile_us(&delta, 0.99),
            busy_rate: busy as f64 / (accepts.max(1)) as f64,
        };
        progress(&format!(
            "workers={:<2} {:>7.0} req/s  p50 {:>6}us  p99 {:>6}us  busy {:.3}",
            run.workers, run.req_per_s, run.p50_us, run.p99_us, run.busy_rate
        ));
        runs.push(run);
    }
    ServeBenchReport { config: config.clone(), runs }
}

impl ServeBenchReport {
    /// The `serve` section as a JSON value.
    pub fn to_value(&self) -> Value {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"workers\": {}, \"requests\": {}, \"req_per_s\": {:.3}, \
                     \"p50_us\": {}, \"p99_us\": {}, \"busy_rate\": {:.6}}}",
                    r.workers, r.requests, r.req_per_s, r.p50_us, r.p99_us, r.busy_rate
                )
            })
            .collect();
        let text = format!(
            "{{\"clients\": {}, \"requests_per_client\": {}, \"pipeline_depth\": {}, \
             \"payload_elems\": {}, \"runs\": [{}]}}",
            self.config.clients,
            self.config.requests_per_client,
            self.config.pipeline_depth,
            self.config.npts * self.config.nlev,
            runs.join(", ")
        );
        json::parse(&text).expect("serve section serializes to valid JSON")
    }

    /// Merge this report into an existing `BENCH.json` document: set the
    /// `serve` section and bump the schema to `cc-bench-throughput/3`.
    /// The result is re-validated before being returned, so a document
    /// that cannot legally carry the section (e.g. a pre-telemetry `/1`
    /// artifact) errors instead of producing an invalid file.
    pub fn merge_into_bench(&self, bench_text: &str) -> Result<String, Vec<String>> {
        let mut doc = json::parse(bench_text)
            .map_err(|e| vec![format!("existing BENCH.json is not valid JSON: {e}")])?;
        if doc.get("schema").and_then(Value::as_str).is_none() {
            return Err(vec!["existing BENCH.json has no schema field".into()]);
        }
        doc.set("schema", Value::Str("cc-bench-throughput/3".into()));
        doc.set("serve", self.to_value());
        let merged = doc.to_json();
        crate::throughput::validate(&merged)?;
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_walk_log2_buckets() {
        let mut buckets = vec![0u64; cc_obs::HIST_BUCKETS];
        buckets[0] = 0;
        buckets[5] = 90; // values in [16, 32)
        buckets[8] = 10; // values in [128, 256)
        assert_eq!(percentile_us(&buckets, 0.50), 32);
        assert_eq!(percentile_us(&buckets, 0.90), 32);
        assert_eq!(percentile_us(&buckets, 0.99), 256);
        assert_eq!(percentile_us(&[0u64; 64], 0.5), 0);
    }

    #[test]
    fn tiny_sweep_measures_and_merges() {
        let config = ServeBenchConfig {
            worker_counts: vec![1, 2],
            clients: 2,
            requests_per_client: 3,
            pipeline_depth: 2,
            npts: 512,
            nlev: 1,
        };
        let report = run(&config, &mut |_| {});
        assert_eq!(report.runs.len(), 2);
        for r in &report.runs {
            assert_eq!(r.requests, 6);
            assert!(r.req_per_s > 0.0);
            assert!(r.p99_us >= r.p50_us);
            assert!(r.busy_rate >= 0.0);
        }

        // Merging into a fresh /2 document yields a valid /3 one.
        let base = crate::throughput::run(
            &crate::throughput::BenchConfig {
                npts: 2_048,
                nlev: 1,
                worker_counts: vec![1, 2],
                reps: 1,
                preset: "quick".into(),
            },
            &mut |_| {},
        );
        let merged = report.merge_into_bench(&base.to_json()).expect("merge");
        crate::throughput::validate(&merged).expect("merged document is /3-valid");
        let doc = json::parse(&merged).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("cc-bench-throughput/3")
        );
        assert_eq!(
            doc.get("serve").and_then(|s| s.get("runs")).and_then(Value::as_array).map(|a| a.len()),
            Some(2)
        );

        // A schema-less document refuses the merge.
        assert!(report.merge_into_bench("{}").is_err());
    }
}
