//! `repro serve-bench`: loopback throughput of the `cc-serve` daemon.
//!
//! Starts an in-process reactor server per worker count, drives it with
//! swept numbers of concurrent client threads issuing pipelined
//! `Compress` requests, and reports requests/second plus latency
//! percentiles read from the server's own `serve.req_us` histogram
//! (log2 buckets, diffed across the run — the same telemetry `--trace`
//! exports; percentiles are conservative bucket upper bounds via
//! [`cc_obs::percentile_upper_bound`]). Each run also reports the
//! per-opcode latency split from the `serve.req_us.{op}` histograms.
//! The result merges into an existing `BENCH.json` as a `serve`
//! section, bumping the schema additively to `cc-bench-throughput/6`
//! (see [`crate::throughput`] for the base document).
//!
//! ```json
//! "serve": {
//!   "shards": N, "requests_per_client": N, "pipeline_depth": N,
//!   "payload_elems": N, "client_counts": [8, 128, ...],
//!   "runs": [
//!     {"workers": 1, "clients": 8, "requests": N, "req_per_s": X,
//!      "p50_us": N, "p99_us": N, "p999_us": N, "busy_rate": X,
//!      "per_op": [{"op": "compress", "count": N,
//!                  "p50_us": N, "p99_us": N, "p999_us": N}]}, ...
//!   ]
//! }
//! ```
//!
//! The sweep runs at the server's **default** `queue_depth` and
//! connection cap deliberately: the acceptance criterion is that
//! hundreds of pipelined clients complete without a `Busy` storm, so
//! the bench must not widen the queue to hide one.

use crate::throughput::bench_field;
use cc_obs::json::{self, Value};
use cc_serve::wire::{CompressRequest, Opcode};
use cc_serve::{Client, Server, ServerConfig};
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Server worker counts to sweep (the schema requires >= 2).
    pub worker_counts: Vec<usize>,
    /// Reactor shards (fixed across the sweep).
    pub shards: usize,
    /// Concurrent client-thread counts to sweep per worker count.
    pub client_counts: Vec<usize>,
    /// Requests issued by each client.
    pub requests_per_client: usize,
    /// Requests in flight per client (pipelining batch size).
    pub pipeline_depth: usize,
    /// Horizontal points of the compressed payload field.
    pub npts: usize,
    /// Vertical levels of the payload field.
    pub nlev: usize,
}

impl ServeBenchConfig {
    /// CI smoke scale: still reaches 128 concurrent pipelined clients
    /// (the acceptance floor) with a tiny payload.
    pub fn quick() -> Self {
        ServeBenchConfig {
            worker_counts: vec![1, 2],
            shards: 2,
            client_counts: vec![8, 128],
            requests_per_client: 4,
            pipeline_depth: 4,
            npts: 4_096,
            nlev: 1,
        }
    }

    /// Default scale: the worker sweep the acceptance criterion is
    /// stated against (1 and 8 workers), up to 256 clients.
    pub fn default_scale() -> Self {
        ServeBenchConfig {
            worker_counts: vec![1, 2, 8],
            shards: 2,
            client_counts: vec![16, 64, 256],
            requests_per_client: 8,
            pipeline_depth: 4,
            npts: 16_384,
            nlev: 2,
        }
    }
}

/// Opcodes whose latency histograms the sweep splits out.
const LATENCY_OPS: &[&str] = &["ping", "compress", "decompress", "evaluate", "stats", "shutdown"];

/// Latency of one opcode over one run, from the server's own
/// `serve.req_us.{op}` histogram delta.
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Opcode name.
    pub op: String,
    /// Requests of this opcode completed during the run.
    pub count: u64,
    /// Median latency, µs (log2-bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: u64,
}

/// One (worker count, client count) measurement.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Server worker threads.
    pub workers: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests completed.
    pub requests: u64,
    /// Requests per second (wall clock across all clients).
    pub req_per_s: f64,
    /// Median request-handling latency, µs (log2-bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile request-handling latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile request-handling latency, µs.
    pub p999_us: u64,
    /// `Busy` responses per accepted connection over the run.
    pub busy_rate: f64,
    /// Per-opcode latency split (opcodes that saw traffic only).
    pub per_op: Vec<OpLatency>,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Configuration used.
    pub config: ServeBenchConfig,
    /// One entry per (worker count, client count) pair.
    pub runs: Vec<ServeRun>,
}

/// Dense per-bucket counts of a histogram snapshot.
fn dense_buckets(snap: &cc_obs::HistogramSnapshot) -> Vec<u64> {
    let mut out = vec![0u64; cc_obs::HIST_BUCKETS];
    for &(i, n) in &snap.buckets {
        out[i as usize] = n;
    }
    out
}

/// Run the sweep. `progress` receives one line per run.
pub fn run(config: &ServeBenchConfig, progress: &mut dyn FnMut(&str)) -> ServeBenchReport {
    let (data, layout) = bench_field(config.npts, config.nlev);
    let mut runs = Vec::new();
    for &workers in &config.worker_counts {
        for &clients in &config.client_counts {
            let server = Server::start(ServerConfig {
                workers,
                shards: config.shards,
                ..ServerConfig::default()
            })
            .expect("bind loopback");
            let addr = server.addr().to_string();

            let hist_before = dense_buckets(&cc_obs::histogram("serve.req_us").snapshot());
            let per_op_before: Vec<cc_obs::HistogramSnapshot> = LATENCY_OPS
                .iter()
                .map(|op| cc_obs::histogram(&format!("serve.req_us.{op}")).snapshot())
                .collect();
            let busy_before = cc_obs::counter_value("serve.busy");
            let accept_before = cc_obs::counter_value("serve.accept");

            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..clients {
                    let addr = &addr;
                    let data = &data;
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let req = CompressRequest {
                            variant: "fpzip-24".to_string(),
                            layout,
                            data: data.clone(),
                        };
                        let payload = req.encode().expect("encode");
                        let mut remaining = config.requests_per_client;
                        while remaining > 0 {
                            let batch = remaining.min(config.pipeline_depth.max(1));
                            let reqs: Vec<(Opcode, Vec<u8>)> = (0..batch)
                                .map(|_| (Opcode::Compress, payload.clone()))
                                .collect();
                            let results = client.pipeline(&reqs).expect("pipeline");
                            for r in results {
                                r.expect("compress succeeds");
                            }
                            remaining -= batch;
                        }
                    });
                }
            });
            let secs = t0.elapsed().as_secs_f64();
            server.shutdown();

            let hist_after = dense_buckets(&cc_obs::histogram("serve.req_us").snapshot());
            let delta: Vec<u64> =
                hist_after.iter().zip(&hist_before).map(|(a, b)| a.saturating_sub(*b)).collect();
            let requests = (clients * config.requests_per_client) as u64;
            let accepts = cc_obs::counter_value("serve.accept").saturating_sub(accept_before);
            let busy = cc_obs::counter_value("serve.busy").saturating_sub(busy_before);
            let per_op: Vec<OpLatency> = LATENCY_OPS
                .iter()
                .zip(&per_op_before)
                .filter_map(|(op, before)| {
                    let d = cc_obs::histogram(&format!("serve.req_us.{op}"))
                        .snapshot()
                        .delta(before);
                    (d.count > 0).then(|| OpLatency {
                        op: op.to_string(),
                        count: d.count,
                        p50_us: d.percentile(0.50),
                        p99_us: d.percentile(0.99),
                        p999_us: d.percentile(0.999),
                    })
                })
                .collect();
            let run = ServeRun {
                workers,
                clients,
                requests,
                req_per_s: requests as f64 / secs.max(1e-9),
                p50_us: cc_obs::percentile_upper_bound(&delta, 0.50),
                p99_us: cc_obs::percentile_upper_bound(&delta, 0.99),
                p999_us: cc_obs::percentile_upper_bound(&delta, 0.999),
                busy_rate: busy as f64 / (accepts.max(1)) as f64,
                per_op,
            };
            progress(&format!(
                "workers={:<2} clients={:<4} {:>7.0} req/s  p50 {:>6}us  p99 {:>6}us  p999 {:>6}us  busy {:.3}",
                run.workers, run.clients, run.req_per_s, run.p50_us, run.p99_us, run.p999_us,
                run.busy_rate
            ));
            for o in &run.per_op {
                progress(&format!(
                    "  {:<12} {:>6} reqs  p50 {:>6}us  p99 {:>6}us  p999 {:>6}us",
                    o.op, o.count, o.p50_us, o.p99_us, o.p999_us
                ));
            }
            runs.push(run);
        }
    }
    ServeBenchReport { config: config.clone(), runs }
}

impl ServeBenchReport {
    /// The `serve` section as a JSON value.
    pub fn to_value(&self) -> Value {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                let per_op: Vec<String> = r
                    .per_op
                    .iter()
                    .map(|o| {
                        format!(
                            "{{\"op\": \"{}\", \"count\": {}, \"p50_us\": {}, \
                             \"p99_us\": {}, \"p999_us\": {}}}",
                            o.op, o.count, o.p50_us, o.p99_us, o.p999_us
                        )
                    })
                    .collect();
                format!(
                    "{{\"workers\": {}, \"clients\": {}, \"requests\": {}, \
                     \"req_per_s\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \
                     \"p999_us\": {}, \"busy_rate\": {:.6}, \"per_op\": [{}]}}",
                    r.workers, r.clients, r.requests, r.req_per_s, r.p50_us, r.p99_us, r.p999_us,
                    r.busy_rate,
                    per_op.join(", ")
                )
            })
            .collect();
        let counts: Vec<String> =
            self.config.client_counts.iter().map(|c| c.to_string()).collect();
        let text = format!(
            "{{\"shards\": {}, \"requests_per_client\": {}, \"pipeline_depth\": {}, \
             \"payload_elems\": {}, \"client_counts\": [{}], \"runs\": [{}]}}",
            self.config.shards,
            self.config.requests_per_client,
            self.config.pipeline_depth,
            self.config.npts * self.config.nlev,
            counts.join(", "),
            runs.join(", ")
        );
        json::parse(&text).expect("serve section serializes to valid JSON")
    }

    /// Merge this report into an existing `BENCH.json` document: set the
    /// `serve` section and bump the schema to `cc-bench-throughput/6`.
    /// The result is re-validated before being returned, so a document
    /// that cannot legally carry the section (e.g. a pre-telemetry `/1`
    /// artifact) errors instead of producing an invalid file.
    pub fn merge_into_bench(&self, bench_text: &str) -> Result<String, Vec<String>> {
        let mut doc = json::parse(bench_text)
            .map_err(|e| vec![format!("existing BENCH.json is not valid JSON: {e}")])?;
        let Some(schema) = doc.get("schema").and_then(Value::as_str) else {
            return Err(vec!["existing BENCH.json has no schema field".into()]);
        };
        if schema != "cc-bench-throughput/7" && schema != "cc-bench-throughput/8" {
            doc.set("schema", Value::Str("cc-bench-throughput/6".into()));
        }
        doc.set("serve", self.to_value());
        let merged = doc.to_json();
        crate::throughput::validate(&merged)?;
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_merges() {
        let config = ServeBenchConfig {
            worker_counts: vec![1, 2],
            shards: 2,
            client_counts: vec![2],
            requests_per_client: 3,
            pipeline_depth: 2,
            npts: 512,
            nlev: 1,
        };
        let report = run(&config, &mut |_| {});
        assert_eq!(report.runs.len(), 2);
        for r in &report.runs {
            assert_eq!(r.clients, 2);
            assert_eq!(r.requests, 6);
            assert!(r.req_per_s > 0.0);
            assert!(r.p99_us >= r.p50_us);
            assert!(r.p999_us >= r.p99_us);
            assert!(r.busy_rate >= 0.0);
            // The sweep issues Compress only, so the per-opcode split
            // must contain it (counts are process-wide deltas, so >=).
            let comp = r.per_op.iter().find(|o| o.op == "compress").expect("compress split");
            assert!(comp.count >= 6);
            assert!(comp.p99_us >= comp.p50_us && comp.p999_us >= comp.p99_us);
        }

        // Merging into a fresh /2 document yields a valid /4 one.
        let base = crate::throughput::run(
            &crate::throughput::BenchConfig {
                npts: 2_048,
                nlev: 1,
                worker_counts: vec![1, 2],
                reps: 1,
                preset: "quick".into(),
            },
            &mut |_| {},
        );
        let merged = report.merge_into_bench(&base.to_json()).expect("merge");
        crate::throughput::validate(&merged).expect("merged document is /6-valid");
        let doc = json::parse(&merged).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("cc-bench-throughput/6")
        );
        assert_eq!(
            doc.get("serve").and_then(|s| s.get("runs")).and_then(Value::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            doc.get("serve")
                .and_then(|s| s.get("client_counts"))
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(1)
        );

        // A schema-less document refuses the merge.
        assert!(report.merge_into_bench("{}").is_err());
    }
}
