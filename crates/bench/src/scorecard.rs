//! The reproduction scorecard: machine-checkable shape claims.
//!
//! EXPERIMENTS.md argues the reproduction preserves the paper's *shapes* —
//! who wins, what orders, which failure modes appear. This module encodes
//! those claims as assertions over the `results/*.csv` artifacts so the
//! claim list is executable: `repro scorecard` prints PASS/FAIL per claim
//! after a run of the main experiments.

use std::collections::HashMap;
use std::path::Path;

/// Severity of a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Core shape claim: a failure means the reproduction broke.
    Required,
    /// Configuration-sensitive claim: expected at default scales, may
    /// legitimately flip at extreme reductions.
    Expected,
}

/// One evaluated claim.
#[derive(Debug)]
pub struct Claim {
    /// Severity.
    pub level: Level,
    /// Human-readable statement.
    pub text: String,
    /// Outcome (`None` = needed artifact missing).
    pub pass: Option<bool>,
}

/// Parse a CSV produced by `cc_core::report::Table::to_csv` into rows of
/// string cells (no quoted-comma handling needed for our tables).
fn read_csv(dir: &Path, name: &str) -> Option<Vec<Vec<String>>> {
    let text = std::fs::read_to_string(dir.join(name)).ok()?;
    Some(
        text.lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
            .collect(),
    )
}

/// Extract `NRMSE (CR)`-style cells: returns (value, cr).
fn split_val_cr(cell: &str) -> Option<(f64, f64)> {
    let (v, rest) = cell.split_once('(')?;
    let cr = rest.trim_end_matches(')');
    Some((v.trim().parse().ok()?, cr.trim().parse().ok()?))
}

/// Evaluate every claim against the artifacts in `dir`.
pub fn evaluate(dir: &Path) -> Vec<Claim> {
    let mut claims = Vec::new();
    let mut claim = |level: Level, text: &str, pass: Option<bool>| {
        claims.push(Claim { level, text: text.to_string(), pass });
    };

    // ---- Table 3/4: error and CR structure. ---------------------------
    if let Some(rows) = read_csv(dir, "table3.csv") {
        let by_method: HashMap<String, Vec<(f64, f64)>> = rows
            .iter()
            .filter_map(|r| {
                let cells: Option<Vec<(f64, f64)>> =
                    r[1..].iter().map(|c| split_val_cr(c)).collect();
                Some((r[0].clone(), cells?))
            })
            .collect();
        let cr_of = |m: &str| by_method.get(m).map(|v| v[0].1);
        let err_of = |m: &str| by_method.get(m).map(|v| v[0].0);

        claim(
            Level::Required,
            "APAX fixed rates are exact (CR 0.50/0.25/0.20 on U)",
            (|| {
                Some(
                    (cr_of("APAX-2")? - 0.50).abs() < 0.01
                        && (cr_of("APAX-4")? - 0.25).abs() < 0.01
                        && (cr_of("APAX-5")? - 0.20).abs() < 0.01,
                )
            })(),
        );
        claim(
            Level::Required,
            "fpzip-16 compresses harder than fpzip-24 and errs more (U)",
            (|| {
                Some(cr_of("fpzip-16")? < cr_of("fpzip-24")? && err_of("fpzip-16")? > err_of("fpzip-24")?)
            })(),
        );
        claim(
            Level::Required,
            "ISABELA CRs sit in the sort-index band (0.30-0.70 on U)",
            (|| {
                let a = cr_of("ISA-0.1")?;
                let b = cr_of("ISA-1.0")?;
                Some((0.30..=0.70).contains(&a) && (0.30..=0.70).contains(&b))
            })(),
        );
        claim(
            Level::Required,
            "within ISABELA, tighter error bound costs CR (ISA-0.1 ≥ ISA-1.0 on U)",
            (|| Some(cr_of("ISA-0.1")? >= cr_of("ISA-1.0")?))(),
        );
        // Cross-check NRMSE ≲ e_nmax via table4.
        if let Some(rows4) = read_csv(dir, "table4.csv") {
            let enmax: HashMap<String, f64> = rows4
                .iter()
                .filter_map(|r| Some((r[0].clone(), split_val_cr(&r[1])?.0)))
                .collect();
            let ok = by_method.iter().all(|(m, v)| {
                enmax.get(m).map(|&e| v[0].0 <= e + 1e-12).unwrap_or(false)
            });
            claim(Level::Required, "NRMSE ≤ e_nmax for every method (U)", Some(ok));
        }
    } else {
        claim(Level::Required, "table3.csv present", None);
    }

    // ---- Table 6: pass-count structure. --------------------------------
    if let Some(rows) = read_csv(dir, "table6.csv") {
        let all: HashMap<String, i64> = rows
            .iter()
            .filter_map(|r| Some((r[0].clone(), r[5].parse().ok()?)))
            .collect();
        let g = |m: &str| all.get(m).copied();
        claim(
            Level::Required,
            "more compression ⇒ fewer passes within every family",
            (|| {
                Some(
                    g("APAX-2")? >= g("APAX-4")?
                        && g("APAX-4")? >= g("APAX-5")?
                        && g("fpzip-24")? >= g("fpzip-16")?
                        && g("ISA-0.1")? >= g("ISA-0.5")?
                        && g("ISA-0.5")? >= g("ISA-1.0")?,
                )
            })(),
        );
        claim(
            Level::Expected,
            "fpzip-16 passes near the paper's 113 of 170 (±25)",
            g("fpzip-16").map(|v| (88..=138).contains(&v)),
        );
        claim(
            Level::Required,
            "no method passes fewer than 0 or more than 170",
            Some(all.values().all(|&v| (0..=170).contains(&v))),
        );
    } else {
        claim(Level::Required, "table6.csv present", None);
    }

    // ---- Table 7: hybrid ranking. --------------------------------------
    if let Some(rows) = read_csv(dir, "table7.csv") {
        let avg_cr: Option<Vec<f64>> = rows
            .iter()
            .find(|r| r[0] == "avg. CR")
            .map(|r| r[1..].iter().filter_map(|c| c.parse().ok()).collect());
        claim(
            Level::Required,
            "hybrid ranking fpzip ≤ APAX ≤ ISABELA < NC (paper's Table 7 order)",
            avg_cr.as_ref().map(|v| {
                // columns: GRIB2, ISABELA, fpzip, APAX, NC
                v.len() == 5 && v[2] <= v[3] && v[3] <= v[1] && v[1] < v[4] && v[0] < v[4]
            }),
        );
        claim(
            Level::Required,
            "every hybrid compresses (avg CR < 1) and beats lossless NC",
            avg_cr.as_ref().map(|v| v[..4].iter().all(|&c| c < v[4] && c < 1.0)),
        );
    } else {
        claim(Level::Required, "table7.csv present", None);
    }

    // ---- Figure 2: per-variable phenomenology. -------------------------
    if let Some(rows) = read_csv(dir, "fig2.csv") {
        let fails = |var: &str| -> Vec<String> {
            rows.iter()
                .filter(|r| r[0] == var && r[4] == "false")
                .map(|r| r[1].clone())
                .collect()
        };
        claim(
            Level::Expected,
            "every method passes the RMSZ test on U (smooth, small range)",
            Some(fails("U").is_empty()),
        );
        claim(
            Level::Expected,
            "Z3 is the hardest variable for the RMSZ test (≥ 2 methods fail)",
            Some(fails("Z3").len() >= 2),
        );
    } else {
        claim(Level::Required, "fig2.csv present", None);
    }

    // ---- Figure 4: bias phenomenology. ---------------------------------
    if let Some(rows) = read_csv(dir, "fig4.csv") {
        let fail = |var: &str, method: &str| -> bool {
            rows.iter()
                .any(|r| r[0] == var && r[1] == method && r[8] == "false")
        };
        claim(
            Level::Expected,
            "GRIB2 fails the bias test on CCN3 (the paper's Figure-4 outlier)",
            Some(fail("CCN3", "GRIB2")),
        );
        claim(
            Level::Expected,
            "light compression (APAX-2, fpzip-24) passes bias everywhere",
            Some(
                !["U", "FSDSC", "Z3", "CCN3"]
                    .iter()
                    .any(|v| fail(v, "APAX-2") || fail(v, "fpzip-24")),
            ),
        );
    } else {
        claim(Level::Required, "fig4.csv present", None);
    }

    // ---- Extensions (only when their artifacts exist). -----------------
    if let Some(rows) = read_csv(dir, "calibration.csv") {
        claim(
            Level::Required,
            "zero false positives: exact reconstructions always pass",
            Some(rows.iter().all(|r| r[1] == "0.000" && r[2] == "0.000")),
        );
        claim(
            Level::Expected,
            "RMSZ test detects a ≤1σ uniform bias on every focus variable",
            Some(rows.iter().all(|r| r[3].parse::<f64>().map(|e| e <= 1.0).unwrap_or(false))),
        );
    }
    if let Some(rows) = read_csv(dir, "scaling.csv") {
        let crs: Vec<f64> = rows.iter().filter_map(|r| r[2].parse().ok()).collect();
        claim(
            Level::Expected,
            "fpzip-24 CR improves monotonically with grid resolution",
            Some(crs.len() >= 2 && crs.windows(2).all(|w| w[1] <= w[0] + 1e-9)),
        );
    }
    if let Some(rows) = read_csv(dir, "ssim.csv") {
        let cell = |method: &str, col: usize| -> Option<String> {
            rows.iter().find(|r| r[0] == method).map(|r| r[col].clone())
        };
        claim(
            Level::Expected,
            "SSIM flags fpzip-16 on Z3 (visual metric corroborates the PVT)",
            cell("fpzip-16", 3).map(|c| c.contains("(*)")),
        );
        claim(
            Level::Required,
            "SSIM passes APAX-2 everywhere (lossless-grade visuals)",
            Some(
                (1..=4).all(|col| cell("APAX-2", col).map(|c| !c.contains("(*)")).unwrap_or(false)),
            ),
        );
    }

    claims
}

/// Render the scorecard; returns `(required_failures, total_claims)`.
pub fn render(claims: &[Claim]) -> (usize, String) {
    let mut out = String::from("== Reproduction scorecard ==\n");
    let mut required_failures = 0usize;
    for c in claims {
        let (mark, note) = match (c.pass, c.level) {
            (Some(true), _) => ("PASS", ""),
            (Some(false), Level::Required) => {
                required_failures += 1;
                ("FAIL", "")
            }
            (Some(false), Level::Expected) => ("miss", " (config-sensitive)"),
            (None, _) => ("n/a ", " (artifact missing — run the experiment first)"),
        };
        let lvl = match c.level {
            Level::Required => "required",
            Level::Expected => "expected",
        };
        out.push_str(&format!("[{mark}] ({lvl}) {}{note}\n", c.text));
    }
    out.push_str(&format!(
        "\n{} claims, {} required failures\n",
        claims.len(),
        required_failures
    ));
    (required_failures, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_val_cr_parses_table_cells() {
        assert_eq!(split_val_cr("3.6e-4 (0.10)"), Some((3.6e-4, 0.10)));
        assert_eq!(split_val_cr("nonsense"), None);
    }

    #[test]
    fn missing_artifacts_reported_not_panicked() {
        let dir = std::env::temp_dir().join("cc_scorecard_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let claims = evaluate(&dir);
        assert!(!claims.is_empty());
        assert!(claims.iter().all(|c| c.pass.is_none()));
        let (fails, text) = render(&claims);
        assert_eq!(fails, 0, "missing artifacts are not failures");
        assert!(text.contains("artifact missing"));
    }

    #[test]
    fn synthetic_good_results_pass() {
        let dir = std::env::temp_dir().join("cc_scorecard_good");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("table3.csv"),
            "Method,U,FSDSC,Z3,CCN3\n\
             GRIB2,1.0e-5 (0.40),1e-5 (0.4),1e-5 (0.4),1e-5 (0.4)\n\
             APAX-2,1.0e-6 (0.50),1e-6 (0.5),1e-6 (0.5),1e-6 (0.5)\n\
             APAX-4,1.0e-4 (0.25),1e-4 (0.25),1e-4 (0.25),1e-4 (0.25)\n\
             APAX-5,1.0e-3 (0.20),1e-3 (0.2),1e-3 (0.2),1e-3 (0.2)\n\
             fpzip-24,1.0e-6 (0.60),1e-6 (0.6),1e-6 (0.6),1e-6 (0.6)\n\
             fpzip-16,1.0e-3 (0.35),1e-3 (0.35),1e-3 (0.35),1e-3 (0.35)\n\
             ISA-0.1,1.0e-5 (0.55),1e-5 (0.55),1e-5 (0.55),1e-5 (0.55)\n\
             ISA-0.5,1.0e-4 (0.47),1e-4 (0.47),1e-4 (0.47),1e-4 (0.47)\n\
             ISA-1.0,1.0e-3 (0.44),1e-3 (0.44),1e-3 (0.44),1e-3 (0.44)\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("table4.csv"),
            "Method,U,FSDSC,Z3,CCN3\n\
             GRIB2,1.0e-4 (0.40),1,1,1\n\
             APAX-2,1.0e-5 (0.50),1,1,1\n\
             APAX-4,1.0e-3 (0.25),1,1,1\n\
             APAX-5,1.0e-2 (0.20),1,1,1\n\
             fpzip-24,1.0e-5 (0.60),1,1,1\n\
             fpzip-16,1.0e-2 (0.35),1,1,1\n\
             ISA-0.1,1.0e-4 (0.55),1,1,1\n\
             ISA-0.5,1.0e-3 (0.47),1,1,1\n\
             ISA-1.0,1.0e-2 (0.44),1,1,1\n",
        )
        .unwrap();
        let claims = evaluate(&dir);
        let t3_claims: Vec<_> = claims
            .iter()
            .filter(|c| c.pass.is_some() && !c.text.contains("csv present"))
            .collect();
        assert!(t3_claims.iter().all(|c| c.pass == Some(true)), "{t3_claims:?}");
    }
}
