//! Shared scaffolding for the benchmark harness and the `repro` binary.
//!
//! [`RunConfig`] maps command-line flags to model/evaluation settings; the
//! presets trade fidelity for wall-clock: `quick` for smoke tests, the
//! default for shape-faithful runs on a laptop, `full` for the paper's
//! 101-member ensemble on a reduced grid, and `paper-scale` for the actual
//! ne=30 grid (48,602 horizontal points — budget accordingly).

pub mod archive_bench;
pub mod evalbench;
pub mod faults;
pub mod scorecard;
pub mod serve_bench;
pub mod throughput;
pub mod tune;

use cc_core::evaluation::{EvalConfig, Evaluation};
use cc_grid::Resolution;
use cc_model::Model;

/// Harness configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Grid resolution.
    pub resolution: Resolution,
    /// Ensemble members.
    pub members: usize,
    /// Model seed.
    pub seed: u64,
    /// Output directory for text/CSV artifacts.
    pub out_dir: std::path::PathBuf,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            resolution: Resolution::reduced(6, 6),
            members: 41,
            seed: 2014, // HPDC'14
            out_dir: "results".into(),
        }
    }
}

impl RunConfig {
    /// Smoke-test preset.
    pub fn quick() -> Self {
        RunConfig { resolution: Resolution::reduced(3, 4), members: 15, ..Default::default() }
    }

    /// The paper's 101-member ensemble on a reduced grid.
    pub fn full() -> Self {
        RunConfig {
            resolution: Resolution::reduced(8, 8),
            members: cc_model::ENSEMBLE_SIZE,
            ..Default::default()
        }
    }

    /// The paper's actual ne=30, 30-level grid with 101 members.
    pub fn paper_scale() -> Self {
        RunConfig {
            resolution: Resolution::paper(),
            members: cc_model::ENSEMBLE_SIZE,
            ..Default::default()
        }
    }

    /// Build the model + evaluation driver.
    pub fn evaluation(&self) -> Evaluation {
        let model = Model::new(self.resolution, self.seed);
        Evaluation::new(model, EvalConfig::quick(self.members))
    }

    /// Write an artifact under the output directory (creating it).
    pub fn write_artifact(&self, name: &str, contents: &str) {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        std::fs::write(&path, contents).expect("write artifact");
    }
}

/// The four focus variables of Tables 2-5 and Figures 2-4.
pub const FOCUS: [&str; 4] = ["U", "FSDSC", "Z3", "CCN3"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cost() {
        let q = RunConfig::quick();
        let d = RunConfig::default();
        let f = RunConfig::full();
        let p = RunConfig::paper_scale();
        assert!(q.resolution.horiz_points() < d.resolution.horiz_points());
        assert!(d.resolution.horiz_points() < f.resolution.horiz_points());
        assert!(f.resolution.horiz_points() < p.resolution.horiz_points());
        assert_eq!(p.resolution.horiz_points(), 48_602);
        assert_eq!(p.members, 101);
    }

    #[test]
    fn evaluation_builds() {
        let eval = RunConfig::quick().evaluation();
        assert_eq!(eval.model.registry().len(), 170);
        assert_eq!(eval.config.members, 15);
    }
}
