//! Golden end-to-end test: run the `repro` pipeline at smoke scale into
//! a temp directory and assert the scorecard's machine-checked claims
//! pass.
//!
//! The subset regenerates the focus-variable error tables (3 & 4) and
//! the ensemble-consistency figures (2 & 4), then runs `scorecard`,
//! which exits non-zero if any *required* claim fails. Experiments whose
//! artifacts are absent score "n/a", not failure, so the subset stays
//! fast enough for CI while still proving the pipeline + claim checker
//! end to end. (`table6`/`table7` are exercised at full scale by the CI
//! `repro` runs; `table7`'s ranking claim is config-sensitive at smoke
//! scale by design.)

use std::process::Command;

#[test]
fn quick_pipeline_satisfies_required_claims() {
    let out = std::env::temp_dir().join(format!("cc-scorecard-golden-{}", std::process::id()));
    std::fs::create_dir_all(&out).expect("create temp out dir");

    let result = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table3", "table4", "fig2", "fig4", "scorecard", "--quick", "--out"])
        .arg(&out)
        .output()
        .expect("launch repro");

    let stdout = String::from_utf8_lossy(&result.stdout);
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        result.status.success(),
        "repro exited non-zero (a required claim failed)\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );

    // The artifacts the subset promises must exist...
    for artifact in ["table3.csv", "table4.csv", "fig2.csv", "fig4.csv", "scorecard.txt"] {
        assert!(out.join(artifact).is_file(), "missing artifact {artifact}");
    }
    // ...and the scorecard must have actually evaluated required claims
    // (not vacuously passed with everything n/a).
    let card = std::fs::read_to_string(out.join("scorecard.txt")).expect("read scorecard");
    assert!(card.contains("0 required failures"), "scorecard reported failures:\n{card}");
    let passes = card.lines().filter(|l| l.contains("[PASS] (required)")).count();
    assert!(passes >= 4, "expected >= 4 required claims evaluated, saw {passes}:\n{card}");

    std::fs::remove_dir_all(&out).ok();
}
