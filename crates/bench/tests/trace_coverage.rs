//! End-to-end trace coverage: a traced quick evaluation must produce a
//! validating `cc-trace/1` document whose span tree reaches from the
//! evaluation layer through the chunked codec fan-out down to the
//! per-codec and lossless kernels, with nonzero byte counters.
//!
//! This is the integration pin behind the `--trace` flag: if an
//! instrumentation site is dropped from any layer, the stage-name
//! assertions here fail.

use cc_codecs::{Layout, Variant};
use cc_core::evaluation::{verdict_for, EvalConfig, Evaluation};
use cc_grid::Resolution;
use cc_model::Model;
use cc_obs::SpanNode;
use cc_serve::{Client, Server, ServerConfig};

#[test]
fn traced_evaluation_covers_all_pipeline_layers() {
    cc_obs::enable_all();

    let model = Model::new(Resolution::reduced(3, 2), 2014);
    let eval = Evaluation::new(model, EvalConfig::quick(7));
    let var = eval.model.var_id("U").expect("registry has U");
    let ctx = {
        let _s = cc_obs::span("test.context");
        eval.context(var)
    };
    // One lossy family (fpzip wraps in the chunked path) and the
    // lossless NetCDF-4 baseline (exercises cc-lossless).
    for variant in [Variant::Fpzip { bits: 24 }, Variant::NetCdf4] {
        let v = verdict_for(&ctx, variant);
        assert!(v.cr > 0.0);
    }

    let report = cc_obs::trace::TraceReport::collect();
    let text = report.to_json();
    let stats = cc_obs::trace::validate(&text).expect("trace must self-validate");
    assert!(stats.spans > 0);
    assert!(stats.max_depth >= 3, "expected nested stages, got depth {}", stats.max_depth);

    // The summary is the per-stage aggregation of the same tree; every
    // layer of the pipeline must appear in it.
    let stages: Vec<String> = report.summary().into_iter().map(|s| s.name.to_string()).collect();
    for required in [
        // evaluation layer
        "eval.context",
        "eval.member_synth",
        "eval.verdict",
        "eval.sample",
        "eval.test.rmsz",
        "eval.test.enmax",
        // chunked fan-out
        "chunked.encode",
        "chunked.decode",
        // codec layer
        "codec.fpzip-24.encode",
        "codec.fpzip-24.decode",
        "codec.NetCDF-4.encode",
        // lossless kernels (behind the NetCDF-4 baseline)
        "lossless.encode_f32",
        "deflate.encode",
    ] {
        assert!(
            stages.iter().any(|s| s == required),
            "stage {required:?} missing from trace summary; stages: {stages:?}"
        );
    }

    // Byte counters: raw-side encode traffic for both codecs is nonzero.
    for counter in [
        "codec.fpzip-24.encode.bytes_in",
        "codec.fpzip-24.encode.bytes_out",
        "codec.fpzip-24.decode.bytes_out",
        "codec.NetCDF-4.encode.bytes_in",
        "chunked.chunks_encoded",
        "chunked.chunks_decoded",
    ] {
        assert!(
            report.metrics.counter(counter) > 0,
            "counter {counter:?} must be nonzero; counters: {:?}",
            report.metrics.counters
        );
    }
}

/// Depth-first search for the first span with the given name.
fn find_span<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
    for n in nodes {
        if n.name == name {
            return Some(n);
        }
        if let Some(hit) = find_span(&n.children, name) {
            return Some(hit);
        }
    }
    None
}

/// The distributed pin: a traced remote compress against a live server
/// must come back with the server's span subtree grafted under the
/// client's own request span — one tree crossing the process boundary,
/// every stitched stage with nonzero duration, the whole document still
/// `cc-trace/1`-valid (what `ccc trace-check` runs).
#[test]
fn distributed_trace_stitches_server_spans_under_client_request() {
    cc_obs::enable_all();

    let server = Server::start(ServerConfig { shards: 1, workers: 2, ..ServerConfig::default() })
        .expect("bind loopback");
    let addr = server.addr().to_string();

    let layout = Layout::linear(4_096);
    let data: Vec<f32> =
        (0..layout.len()).map(|p| 250.0 + (p as f32 * 0.013).sin() * 20.0).collect();

    // Drain spans this thread recorded before the traced request so the
    // collected report holds exactly the remote round-trip.
    let _ = cc_obs::trace::TraceReport::collect();

    let mut client = Client::connect(&addr).expect("connect");
    let stream = client.compress("fpzip-24", layout, &data).expect("traced remote compress");
    assert!(!stream.is_empty());
    drop(client);
    server.shutdown();

    let report = cc_obs::trace::TraceReport::collect();
    let root = find_span(&report.spans, "client.req.compress")
        .expect("client request span must be a collected root");
    assert!(root.dur_ns > 0, "client span must have nonzero duration");

    // The server subtree is stitched *under* the client span.
    let srv = find_span(&root.children, "srv.request")
        .expect("server span tree must be grafted under the client span");
    assert!(srv.dur_ns > 0, "server root span must have nonzero duration");
    for stage in ["srv.decode", "srv.queue", "srv.compute", "srv.reply.enqueue"] {
        assert!(
            find_span(&srv.children, stage).is_some(),
            "stage {stage:?} missing from stitched server subtree"
        );
    }
    let compute = find_span(&srv.children, "srv.compute").unwrap();
    assert!(compute.dur_ns > 0, "compute span must have nonzero duration");
    assert!(
        find_span(&compute.children, "srv.chunk.encode").is_some(),
        "per-chunk encode marks missing under srv.compute"
    );

    // Containment: the stitched subtree stays inside the client span,
    // and the whole document passes the same validation `ccc
    // trace-check` applies to a written TRACE.json.
    assert!(srv.start_ns >= root.start_ns);
    assert!(srv.end_ns() <= root.end_ns());
    let text = report.to_json();
    let stats = cc_obs::trace::validate(&text).expect("stitched trace must self-validate");
    assert!(stats.spans >= 6, "expected client + server stages, got {} spans", stats.spans);
}
