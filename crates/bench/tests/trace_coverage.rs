//! End-to-end trace coverage: a traced quick evaluation must produce a
//! validating `cc-trace/1` document whose span tree reaches from the
//! evaluation layer through the chunked codec fan-out down to the
//! per-codec and lossless kernels, with nonzero byte counters.
//!
//! This is the integration pin behind the `--trace` flag: if an
//! instrumentation site is dropped from any layer, the stage-name
//! assertions here fail.

use cc_codecs::Variant;
use cc_core::evaluation::{verdict_for, EvalConfig, Evaluation};
use cc_grid::Resolution;
use cc_model::Model;

#[test]
fn traced_evaluation_covers_all_pipeline_layers() {
    cc_obs::enable_all();

    let model = Model::new(Resolution::reduced(3, 2), 2014);
    let eval = Evaluation::new(model, EvalConfig::quick(7));
    let var = eval.model.var_id("U").expect("registry has U");
    let ctx = {
        let _s = cc_obs::span("test.context");
        eval.context(var)
    };
    // One lossy family (fpzip wraps in the chunked path) and the
    // lossless NetCDF-4 baseline (exercises cc-lossless).
    for variant in [Variant::Fpzip { bits: 24 }, Variant::NetCdf4] {
        let v = verdict_for(&ctx, variant);
        assert!(v.cr > 0.0);
    }

    let report = cc_obs::trace::TraceReport::collect();
    let text = report.to_json();
    let stats = cc_obs::trace::validate(&text).expect("trace must self-validate");
    assert!(stats.spans > 0);
    assert!(stats.max_depth >= 3, "expected nested stages, got depth {}", stats.max_depth);

    // The summary is the per-stage aggregation of the same tree; every
    // layer of the pipeline must appear in it.
    let stages: Vec<String> = report.summary().into_iter().map(|s| s.name.to_string()).collect();
    for required in [
        // evaluation layer
        "eval.context",
        "eval.member_synth",
        "eval.verdict",
        "eval.sample",
        "eval.test.rmsz",
        "eval.test.enmax",
        // chunked fan-out
        "chunked.encode",
        "chunked.decode",
        // codec layer
        "codec.fpzip-24.encode",
        "codec.fpzip-24.decode",
        "codec.NetCDF-4.encode",
        // lossless kernels (behind the NetCDF-4 baseline)
        "lossless.encode_f32",
        "deflate.encode",
    ] {
        assert!(
            stages.iter().any(|s| s == required),
            "stage {required:?} missing from trace summary; stages: {stages:?}"
        );
    }

    // Byte counters: raw-side encode traffic for both codecs is nonzero.
    for counter in [
        "codec.fpzip-24.encode.bytes_in",
        "codec.fpzip-24.encode.bytes_out",
        "codec.fpzip-24.decode.bytes_out",
        "codec.NetCDF-4.encode.bytes_in",
        "chunked.chunks_encoded",
        "chunked.chunks_decoded",
    ] {
        assert!(
            report.metrics.counter(counter) > 0,
            "counter {counter:?} must be nonzero; counters: {:?}",
            report.metrics.counters
        );
    }
}
