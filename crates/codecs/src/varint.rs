//! Zigzag + LEB128 varint token helpers shared by the quantized-residual
//! codecs (SZ in this crate, the delta frames in `cc-archive`).
//!
//! Tokens follow the SZ convention: honest magnitudes stay within 35 bits
//! (`zigzag(|q| ≤ 2^30) + 1`), so [`read_varint`] rejects anything longer —
//! a damaged stream cannot force unbounded shifts or huge decoded values.

use crate::CodecError;

/// Map a signed value onto the unsigned token space (small magnitudes stay
/// small in either sign).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LEB128 length of a token (1..=5 bytes for our token range).
#[inline]
pub fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Append one LEB128 token.
#[inline]
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v & 0x7F) as u8 | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 token; rejects truncation and tokens over 35 bits
/// (honest tokens are `zigzag(|q| ≤ 2^30) + 1`).
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(CodecError::Corrupt("truncated code stream"))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 35 {
            return Err(CodecError::Corrupt("varint code out of range"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 5, -5, 1 << 30, -(1 << 30), i64::MAX / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip_and_len() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 0x7F, 0x80, 0x3FFF, 0x4000, u32::MAX as u64, 1 << 34];
        for &v in &values {
            let before = buf.len();
            push_varint(&mut buf, v);
            assert_eq!(buf.len() - before, varint_len(v));
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x80], &mut pos).is_err());
        let overlong = [0xFFu8; 10];
        let mut pos = 0;
        assert!(read_varint(&overlong, &mut pos).is_err());
    }
}
