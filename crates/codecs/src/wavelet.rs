//! Reversible integer wavelet transform (CDF 5/3, the JPEG2000 lossless
//! filter) over 2-D integer fields of arbitrary size.
//!
//! The GRIB2 codec quantizes each level to integers with a decimal scale
//! factor and then transform-codes the integer field the way a JPEG2000
//! encoder would: a multi-level 2-D lifting wavelet followed by entropy
//! coding of the (mostly near-zero) coefficients. The 5/3 filter's integer
//! lifting steps are exactly invertible, so the only loss in the pipeline
//! remains the decimal quantization — GRIB2 "simple packing" semantics.

/// Forward 1-D CDF 5/3 lifting on `data`, in place, de-interleaved so the
/// first `ceil(n/2)` entries are low-pass and the rest high-pass.
pub fn fwd53_1d(data: &mut [i64], scratch: &mut Vec<i64>) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let half = n.div_ceil(2);
    scratch.clear();
    scratch.resize(n, 0);
    // Predict: d[i] = odd[i] − floor((even[i] + even[i+1]) / 2)
    // All lifting arithmetic wraps: corrupt streams can feed coefficients
    // near the i64 extremes, and a wrapped forward/inverse pair computes
    // identical intermediate terms, so exact invertibility survives.
    for i in 0..n / 2 {
        let odd = data[2 * i + 1];
        let left = data[2 * i];
        let right = if 2 * i + 2 < n { data[2 * i + 2] } else { left };
        scratch[half + i] = odd.wrapping_sub(left.wrapping_add(right) >> 1);
    }
    // Update: s[i] = even[i] + floor((d[i-1] + d[i] + 2) / 4)
    for i in 0..half {
        let even = data[2 * i];
        let dl = if i > 0 { scratch[half + i - 1] } else if n / 2 > 0 { scratch[half] } else { 0 };
        let dr = if half + i < n { scratch[half + i] } else { dl };
        scratch[i] = even.wrapping_add(dl.wrapping_add(dr).wrapping_add(2) >> 2);
    }
    data.copy_from_slice(scratch);
}

/// Inverse of [`fwd53_1d`].
pub fn inv53_1d(data: &mut [i64], scratch: &mut Vec<i64>) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let half = n.div_ceil(2);
    scratch.clear();
    scratch.resize(n, 0);
    // Undo update: even[i] = s[i] − floor((d[i-1] + d[i] + 2) / 4)
    // Wrapping mirrors of the forward steps — see fwd53_1d.
    for i in 0..half {
        let dl = if i > 0 { data[half + i - 1] } else if n / 2 > 0 { data[half] } else { 0 };
        let dr = if half + i < n { data[half + i] } else { dl };
        scratch[2 * i] = data[i].wrapping_sub(dl.wrapping_add(dr).wrapping_add(2) >> 2);
    }
    // Undo predict: odd[i] = d[i] + floor((even[i] + even[i+1]) / 2)
    for i in 0..n / 2 {
        let left = scratch[2 * i];
        let right = if 2 * i + 2 < n { scratch[2 * i + 2] } else { left };
        scratch[2 * i + 1] = data[half + i].wrapping_add(left.wrapping_add(right) >> 1);
    }
    data.copy_from_slice(scratch);
}

/// Multi-level 2-D forward transform on a `rows × cols` row-major field.
/// Each level transforms the low-pass quadrant of the previous one.
pub fn fwd53_2d(data: &mut [i64], rows: usize, cols: usize, levels: usize) {
    assert_eq!(data.len(), rows * cols);
    let mut scratch = Vec::new();
    let mut col_buf = Vec::new();
    let (mut r, mut c) = (rows, cols);
    for _ in 0..levels {
        if r < 2 && c < 2 {
            break;
        }
        // Rows.
        if c >= 2 {
            for row in 0..r {
                fwd53_1d(&mut data[row * cols..row * cols + c], &mut scratch);
            }
        }
        // Columns.
        if r >= 2 {
            for col in 0..c {
                col_buf.clear();
                col_buf.extend((0..r).map(|row| data[row * cols + col]));
                fwd53_1d(&mut col_buf, &mut scratch);
                for (row, &v) in col_buf.iter().enumerate() {
                    data[row * cols + col] = v;
                }
            }
        }
        r = r.div_ceil(2);
        c = c.div_ceil(2);
    }
}

/// Inverse of [`fwd53_2d`].
pub fn inv53_2d(data: &mut [i64], rows: usize, cols: usize, levels: usize) {
    assert_eq!(data.len(), rows * cols);
    // Recompute the quadrant sizes visited by the forward pass.
    let mut dims = Vec::new();
    let (mut r, mut c) = (rows, cols);
    for _ in 0..levels {
        if r < 2 && c < 2 {
            break;
        }
        dims.push((r, c));
        r = r.div_ceil(2);
        c = c.div_ceil(2);
    }
    let mut scratch = Vec::new();
    let mut col_buf = Vec::new();
    for &(r, c) in dims.iter().rev() {
        if r >= 2 {
            for col in 0..c {
                col_buf.clear();
                col_buf.extend((0..r).map(|row| data[row * cols + col]));
                inv53_1d(&mut col_buf, &mut scratch);
                for (row, &v) in col_buf.iter().enumerate() {
                    data[row * cols + col] = v;
                }
            }
        }
        if c >= 2 {
            for row in 0..r {
                inv53_1d(&mut data[row * cols..row * cols + c], &mut scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_1d(data: &[i64]) {
        let mut x = data.to_vec();
        let mut scratch = Vec::new();
        fwd53_1d(&mut x, &mut scratch);
        inv53_1d(&mut x, &mut scratch);
        assert_eq!(x, data);
    }

    #[test]
    fn oned_roundtrip_various_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100, 101] {
            let data: Vec<i64> = (0..n as i64).map(|i| (i * i * 7) % 1000 - 500).collect();
            roundtrip_1d(&data);
        }
    }

    #[test]
    fn oned_smooth_data_has_small_highpass() {
        let data: Vec<i64> = (0..256).map(|i| 1000 + i * 3).collect();
        let mut x = data.clone();
        let mut scratch = Vec::new();
        fwd53_1d(&mut x, &mut scratch);
        // High-pass half of a linear ramp is ~0 (the mirrored boundary
        // sample carries up to one slope unit).
        for &v in &x[128..] {
            assert!(v.abs() <= 3, "high-pass {v}");
        }
    }

    #[test]
    fn twod_roundtrip_rectangular() {
        for (rows, cols) in [(1usize, 1usize), (1, 17), (16, 16), (13, 29), (64, 33), (7, 7)] {
            let data: Vec<i64> = (0..rows * cols)
                .map(|i| ((i as i64) * 2654435761 % 4001) - 2000)
                .collect();
            for levels in 1..=4 {
                let mut x = data.clone();
                fwd53_2d(&mut x, rows, cols, levels);
                inv53_2d(&mut x, rows, cols, levels);
                assert_eq!(x, data, "{rows}x{cols} levels={levels}");
            }
        }
    }

    #[test]
    fn twod_concentrates_energy_in_lowpass() {
        // A smooth 2-D bump: most post-transform magnitude should sit in
        // the low-pass quadrant.
        let (rows, cols) = (32usize, 32usize);
        let data: Vec<i64> = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                let x = (r as f64 - 16.0) / 8.0;
                let y = (c as f64 - 16.0) / 8.0;
                (10_000.0 * (-(x * x + y * y)).exp()) as i64
            })
            .collect();
        let mut t = data.clone();
        fwd53_2d(&mut t, rows, cols, 3);
        let total: i128 = t.iter().map(|&v| (v as i128).abs()).sum();
        let low: i128 = (0..16)
            .flat_map(|r| (0..16).map(move |c| (r, c)))
            .map(|(r, c)| (t[r * cols + c] as i128).abs())
            .sum();
        assert!(low * 2 > total, "low-pass {low} of total {total}");
    }

    #[test]
    fn zero_field_stays_zero() {
        let mut x = vec![0i64; 24 * 24];
        fwd53_2d(&mut x, 24, 24, 3);
        assert!(x.iter().all(|&v| v == 0));
    }
}
