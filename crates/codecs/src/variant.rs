//! The compression configurations evaluated in the paper.
//!
//! Section 5.1: "For fpzip, we use two different levels of precision …
//! fpzip-16 and fpzip-24. We apply the B-spline variant of ISABELA with
//! three different per-point relative error values: 1.0, 0.5, 0.1 … we only
//! show one result [for GRIB2] … we evaluate the APAX compressor using the
//! fixed compression rates 2, 4 and 5." The hybrid construction of Section
//! 5.4 additionally uses the lossless fallbacks fpzip-32 and NetCDF-4.

use crate::apax::Apax;
use crate::fpzip::Fpzip;
use crate::grib2::Grib2;
use crate::guard::SpecialValueGuard;
use crate::isabela::Isabela;
use crate::obs_wrap::ObsCodec;
use crate::sz::{ErrorBound, Sz};
use crate::{Codec, CodecError, CodecProperties, Layout};

/// One evaluated configuration; [`Variant::codec`] instantiates it with
/// special-value handling in place (native for GRIB2/NetCDF-4, guarded for
/// the rest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// GRIB2 + JPEG2000 with per-variable magnitude-adaptive `D`, or a
    /// fixed `D` (e.g. from the ensemble-guided search).
    Grib2 {
        /// `None` = magnitude-adaptive; `Some(d)` = fixed decimal scale.
        decimal_scale: Option<i32>,
    },
    /// APAX at a fixed compression rate (2, 4, 5; 6-7 in the extension
    /// sweep). Rate 1 denotes APAX's lossless mode.
    Apax {
        /// Fixed compression rate.
        rate: f64,
    },
    /// fpzip with 8/16/24/32 retained bits (32 = lossless).
    Fpzip {
        /// Retained precision in bits.
        bits: u8,
    },
    /// ISABELA with a per-point relative error (fraction: 0.001 = 0.1%).
    Isabela {
        /// Relative error bound.
        rel_err: f64,
    },
    /// SZ-style error-bounded prediction + quantization with an absolute
    /// or value-range-relative pointwise bound (the extension sweep and
    /// the auto-tuner's primary family; not part of the paper's nine).
    Sz {
        /// Pointwise error bound.
        bound: ErrorBound,
    },
    /// NetCDF-4 lossless (shuffle + deflate) — the baseline and the
    /// lossless fallback for methods without a lossless mode.
    NetCdf4,
}

impl Variant {
    /// The nine lossy configurations of the paper's evaluation, in the
    /// row order of Tables 3-6.
    pub fn paper_set() -> Vec<Variant> {
        vec![
            Variant::Grib2 { decimal_scale: None },
            Variant::Apax { rate: 2.0 },
            Variant::Apax { rate: 4.0 },
            Variant::Apax { rate: 5.0 },
            Variant::Fpzip { bits: 24 },
            Variant::Fpzip { bits: 16 },
            Variant::Isabela { rel_err: 0.001 },
            Variant::Isabela { rel_err: 0.005 },
            Variant::Isabela { rel_err: 0.01 },
        ]
    }

    /// The variant ladder for each method family, lossiest first, used by
    /// the Section-5.4 hybrid customization. The final entry is the
    /// family's lossless fallback (own lossless mode where one exists,
    /// NetCDF-4 otherwise).
    pub fn ladder(family: Family) -> Vec<Variant> {
        match family {
            Family::Grib2 => vec![Variant::Grib2 { decimal_scale: None }, Variant::NetCdf4],
            Family::Apax => vec![
                Variant::Apax { rate: 5.0 },
                Variant::Apax { rate: 4.0 },
                Variant::Apax { rate: 2.0 },
                Variant::NetCdf4,
            ],
            Family::Fpzip => vec![
                Variant::Fpzip { bits: 16 },
                Variant::Fpzip { bits: 24 },
                Variant::Fpzip { bits: 32 },
            ],
            Family::Isabela => vec![
                Variant::Isabela { rel_err: 0.01 },
                Variant::Isabela { rel_err: 0.005 },
                Variant::Isabela { rel_err: 0.001 },
                Variant::NetCdf4,
            ],
            Family::Sz => vec![
                Variant::Sz { bound: ErrorBound::Rel(1e-2) },
                Variant::Sz { bound: ErrorBound::Rel(1e-3) },
                Variant::Sz { bound: ErrorBound::Rel(1e-4) },
                Variant::Sz { bound: ErrorBound::Rel(1e-5) },
                Variant::NetCdf4,
            ],
        }
    }

    /// Instantiate the codec, with special-value support supplied by the
    /// guard wherever the algorithm lacks it natively, and `cc-obs`
    /// instrumentation (spans + byte counters) wrapped around the whole
    /// stack. The wrapper is byte-transparent, so streams are identical
    /// to the uninstrumented codec's.
    pub fn codec(&self) -> Box<dyn Codec> {
        match *self {
            Variant::Grib2 { decimal_scale: None } => Box::new(ObsCodec::new(Grib2::auto())),
            Variant::Grib2 { decimal_scale: Some(d) } => Box::new(ObsCodec::new(Grib2::fixed(d))),
            Variant::Apax { rate } if rate <= 1.0 => {
                Box::new(ObsCodec::new(SpecialValueGuard::new(Apax::lossless())))
            }
            Variant::Apax { rate } => {
                Box::new(ObsCodec::new(SpecialValueGuard::new(Apax::fixed_rate(rate))))
            }
            Variant::Fpzip { bits } => {
                Box::new(ObsCodec::new(SpecialValueGuard::new(Fpzip::new(bits))))
            }
            Variant::Isabela { rel_err } => {
                Box::new(ObsCodec::new(SpecialValueGuard::new(Isabela::new(rel_err))))
            }
            Variant::Sz { bound } => {
                Box::new(ObsCodec::new(SpecialValueGuard::new(Sz::new(bound))))
            }
            Variant::NetCdf4 => Box::new(ObsCodec::new(NetCdf4Codec)),
        }
    }

    /// Resolve a display name (case-insensitive) back to a variant.
    /// Covers the paper set, the lossless fallbacks `NetCDF-4` and
    /// `fpzip-32`, and SZ bounds: any `SZ-abs-<e>` / `SZ-rel-<r>` with a
    /// positive finite parameter parses, so arbitrary bounds travel over
    /// the `ccc verify --codec` and `cc-serve` wire interfaces.
    pub fn by_name(name: &str) -> Option<Variant> {
        if let Some(v) = Variant::parse_sz(name) {
            return Some(v);
        }
        Variant::paper_set()
            .into_iter()
            .chain([Variant::NetCdf4, Variant::Fpzip { bits: 32 }])
            .find(|v| v.name().eq_ignore_ascii_case(name))
    }

    /// Parse `SZ-abs-<float>` / `SZ-rel-<float>` (case-insensitive).
    fn parse_sz(name: &str) -> Option<Variant> {
        let lower = name.to_ascii_lowercase();
        let rest = lower.strip_prefix("sz-")?;
        let (kind, param) = rest
            .strip_prefix("abs-")
            .map(|p| (0u8, p))
            .or_else(|| rest.strip_prefix("rel-").map(|p| (1u8, p)))?;
        let p: f64 = param.parse().ok()?;
        if !(p.is_finite() && p > 0.0) {
            return None;
        }
        let bound = if kind == 0 { ErrorBound::Abs(p) } else { ErrorBound::Rel(p) };
        Some(Variant::Sz { bound })
    }

    /// True if this configuration reconstructs bit-exactly.
    pub fn is_lossless(&self) -> bool {
        matches!(
            self,
            Variant::NetCdf4 | Variant::Fpzip { bits: 32 }
        )
    }

    /// The family this variant belongs to.
    pub fn family(&self) -> Option<Family> {
        match self {
            Variant::Grib2 { .. } => Some(Family::Grib2),
            Variant::Apax { .. } => Some(Family::Apax),
            Variant::Fpzip { .. } => Some(Family::Fpzip),
            Variant::Isabela { .. } => Some(Family::Isabela),
            Variant::Sz { .. } => Some(Family::Sz),
            Variant::NetCdf4 => None,
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Variant::NetCdf4 => "NetCDF-4".to_string(),
            _ => self.codec().name(),
        }
    }
}

/// The four method families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// GRIB2 + JPEG2000.
    Grib2,
    /// Samplify APAX.
    Apax,
    /// fpzip.
    Fpzip,
    /// ISABELA.
    Isabela,
    /// SZ-style error-bounded prediction (extension; not in the paper).
    Sz,
}

impl Family {
    /// The paper's four families in the column order of Table 7. The SZ
    /// extension family is deliberately excluded so the paper-pinned
    /// tables keep their shape; use [`Family::extended`] for sweeps that
    /// should include it.
    pub fn all() -> [Family; 4] {
        [Family::Grib2, Family::Isabela, Family::Fpzip, Family::Apax]
    }

    /// The paper's families plus the SZ extension family.
    pub fn extended() -> [Family; 5] {
        [Family::Grib2, Family::Isabela, Family::Fpzip, Family::Apax, Family::Sz]
    }

    /// Family display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Grib2 => "GRIB2",
            Family::Isabela => "ISABELA",
            Family::Fpzip => "fpzip",
            Family::Apax => "APAX",
            Family::Sz => "SZ",
        }
    }
}

/// NetCDF-4-style lossless codec: byte shuffle + deflate, exposed through
/// the [`Codec`] interface so it can slot into hybrid ladders.
#[derive(Debug, Clone, Copy)]
pub struct NetCdf4Codec;

impl Codec for NetCdf4Codec {
    fn name(&self) -> String {
        "NetCDF-4".to_string()
    }

    fn properties(&self) -> CodecProperties {
        CodecProperties {
            lossless_mode: true,
            special_values: true, // lossless: fills survive trivially
            freely_available: true,
            fixed_quality: false,
            fixed_cr: false,
            bits_32_and_64: true,
        }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        cc_lossless::compress_f32_shuffled(data, cc_lossless::Level::Default)
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let out = cc_lossless::decompress_f32_shuffled(bytes)?;
        if out.len() != layout.len() {
            return Err(CodecError::LayoutMismatch);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip;
    use crate::testdata::smooth_field;

    #[test]
    fn paper_set_has_nine_variants() {
        let set = Variant::paper_set();
        assert_eq!(set.len(), 9);
        let names: Vec<String> = set.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec![
                "GRIB2", "APAX-2", "APAX-4", "APAX-5", "fpzip-24", "fpzip-16", "ISA-0.1",
                "ISA-0.5", "ISA-1.0"
            ]
        );
    }

    #[test]
    fn every_paper_variant_roundtrips() {
        let (data, layout) = smooth_field(3000, 2);
        for v in Variant::paper_set() {
            let codec = v.codec();
            let (back, n) = roundtrip(codec.as_ref(), &data, layout);
            assert_eq!(back.len(), data.len(), "{}", v.name());
            assert!(n > 0);
        }
    }

    #[test]
    fn netcdf4_variant_is_lossless() {
        let (data, layout) = smooth_field(2500, 1);
        let codec = Variant::NetCdf4.codec();
        let (back, _) = roundtrip(codec.as_ref(), &data, layout);
        assert_eq!(back, data);
    }

    #[test]
    fn fpzip32_is_lossless() {
        let (data, layout) = smooth_field(2500, 1);
        let codec = Variant::Fpzip { bits: 32 }.codec();
        let (back, _) = roundtrip(codec.as_ref(), &data, layout);
        assert_eq!(back, data);
    }

    #[test]
    fn ladders_end_lossless() {
        for family in Family::all() {
            let ladder = Variant::ladder(family);
            assert!(!ladder.is_empty());
            assert!(
                ladder.last().unwrap().is_lossless(),
                "{:?} ladder must end with a lossless fallback",
                family
            );
        }
    }

    #[test]
    fn ladders_match_table8_composition() {
        // Table 8's variant lists: GRIB2+NetCDF-4; ISA-1.0/0.5/0.1+NetCDF-4;
        // fpzip-16/24/32; APAX-5/4/2+NetCDF-4.
        assert_eq!(Variant::ladder(Family::Grib2).len(), 2);
        assert_eq!(Variant::ladder(Family::Isabela).len(), 4);
        assert_eq!(Variant::ladder(Family::Fpzip).len(), 3);
        assert_eq!(Variant::ladder(Family::Apax).len(), 4);
    }

    #[test]
    fn sz_names_roundtrip_by_name() {
        for v in Variant::ladder(Family::Sz) {
            assert_eq!(Variant::by_name(&v.name()), Some(v), "{}", v.name());
        }
        let abs = Variant::by_name("SZ-abs-0.25").unwrap();
        assert_eq!(abs, Variant::Sz { bound: ErrorBound::Abs(0.25) });
        assert_eq!(Variant::by_name("sz-REL-1e-4"), Some(Variant::Sz {
            bound: ErrorBound::Rel(1e-4),
        }));
        assert!(Variant::by_name("SZ-abs-0").is_none());
        assert!(Variant::by_name("SZ-abs--1").is_none());
        assert!(Variant::by_name("SZ-abs-inf").is_none());
        assert!(Variant::by_name("SZ-pct-1").is_none());
    }

    #[test]
    fn sz_ladder_ends_lossless_and_variant_handles_fills() {
        let ladder = Variant::ladder(Family::Sz);
        assert_eq!(ladder.len(), 5);
        assert!(ladder.last().unwrap().is_lossless());
        let (mut data, layout) = smooth_field(2048, 1);
        for i in (0..2048).step_by(17) {
            data[i] = 1.0e35;
        }
        let v = Variant::Sz { bound: ErrorBound::Rel(1e-3) };
        let codec = v.codec();
        assert!(codec.properties().special_values);
        let (back, _) = roundtrip(codec.as_ref(), &data, layout);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            if a == 1.0e35 {
                assert_eq!(b, 1.0e35, "SZ lost fill at {i}");
            }
        }
    }

    #[test]
    fn extended_families_superset_paper_families() {
        let ext = Family::extended();
        assert_eq!(ext.len(), 5);
        for f in Family::all() {
            assert!(ext.contains(&f));
        }
        assert!(ext.contains(&Family::Sz));
    }

    #[test]
    fn every_variant_handles_special_values() {
        let (mut data, layout) = smooth_field(2048, 1);
        for i in (0..2048).step_by(13) {
            data[i] = 1.0e35;
        }
        for v in Variant::paper_set() {
            let codec = v.codec();
            assert!(codec.properties().special_values, "{}", v.name());
            let (back, _) = roundtrip(codec.as_ref(), &data, layout);
            for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
                if a == 1.0e35 {
                    assert_eq!(b, 1.0e35, "{} lost fill at {i}", v.name());
                }
            }
        }
    }
}
