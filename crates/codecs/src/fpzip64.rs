//! fpzip for double-precision data — the restart-file path.
//!
//! CESM restart files are written in full 8-byte precision and the paper
//! defers them to future work with *lossless* techniques; Table 1 credits
//! fpzip with both 32- and 64-bit support. This module supplies the 64-bit
//! variant: the same monotone integer mapping + 2-D Lorenzo prediction +
//! Rice-coded residuals as [`crate::fpzip`], over `u64` words with
//! wrapping prediction arithmetic (differences wrap; decoding wraps back,
//! so reconstruction is exact at full precision).

use crate::{CodecError, Layout};
use cc_lossless::bitio::{BitReader, BitWriter};

/// fpzip over `f64` with `p` retained bits (multiple of 8, up to 64;
/// 64 = lossless).
#[derive(Debug, Clone, Copy)]
pub struct Fpzip64 {
    precision: u8,
}

impl Fpzip64 {
    /// Create with `precision ∈ {8, 16, ..., 64}`.
    pub fn new(precision: u8) -> Self {
        assert!(
            precision.is_multiple_of(8) && (8..=64).contains(&precision),
            "fpzip64 precision must be a multiple of 8 in 8..=64, got {precision}"
        );
        Fpzip64 { precision }
    }

    /// Lossless 64-bit configuration.
    pub fn lossless() -> Self {
        Fpzip64::new(64)
    }

    fn dropped_bits(&self) -> u32 {
        64 - self.precision as u32
    }

    /// Compress a double-precision field.
    pub fn compress(&self, data: &[f64], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        let drop = self.dropped_bits();
        let mask = if drop == 0 { u64::MAX } else { u64::MAX << drop };
        let npts = layout.npts;
        let ints: Vec<u64> = data.iter().map(|&v| forward_map64(v) & mask).collect();

        let mut w = BitWriter::new();
        w.write_bits(self.precision as u64, 8);
        let mut block: Vec<u64> = Vec::with_capacity(RICE_BLOCK);
        let flush = |w: &mut BitWriter, block: &mut Vec<u64>| {
            if block.is_empty() {
                return;
            }
            let k = rice_k_for(block);
            w.write_bits(k as u64, 6);
            for &r in block.iter() {
                w.write_rice(r, k);
            }
            block.clear();
        };
        for (i, &cur) in ints.iter().enumerate() {
            let pred = predict(&ints, i, npts);
            // Wrapping difference, shifted down by the truncation amount
            // (all values share the 2^drop divisibility).
            let r = (cur.wrapping_sub(pred)) >> drop;
            // Interpret as signed in the reduced width for zigzag.
            let width = 64 - drop;
            let signed = if width == 64 {
                r as i64
            } else {
                // Sign-extend from `width` bits.
                ((r << drop) as i64) >> drop
            };
            block.push(zigzag(signed));
            if block.len() == RICE_BLOCK {
                flush(&mut w, &mut block);
            }
        }
        flush(&mut w, &mut block);
        w.finish()
    }

    /// Reconstruct a double-precision field.
    pub fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f64>, CodecError> {
        let mut r = BitReader::new(bytes);
        let precision = r.read_bits(8)? as u8;
        if precision != self.precision {
            return Err(CodecError::Corrupt("precision header mismatch"));
        }
        let drop = self.dropped_bits();
        let n = layout.len();
        let npts = layout.npts;
        let mut ints = vec![0u64; n];
        let mut i = 0usize;
        while i < n {
            let len = RICE_BLOCK.min(n - i);
            let k = r.read_bits(6)? as u32;
            if k > 48 {
                return Err(CodecError::Corrupt("bad rice parameter"));
            }
            for _ in 0..len {
                let signed = unzigzag(r.read_rice(k)?);
                // The residual's significant bits live above the truncation
                // point; wrapping shift restores divisibility by 2^drop.
                let res = (signed as u64).wrapping_shl(drop);
                let pred = predict(&ints, i, npts);
                ints[i] = pred.wrapping_add(res);
                i += 1;
            }
        }
        Ok(ints.into_iter().map(inverse_map64).collect())
    }
}

const RICE_BLOCK: usize = 512;

#[inline]
fn predict(ints: &[u64], i: usize, npts: usize) -> u64 {
    let lev = i / npts;
    let p = i % npts;
    match (lev > 0, p > 0) {
        (true, true) => ints[i - 1]
            .wrapping_add(ints[i - npts])
            .wrapping_sub(ints[i - npts - 1]),
        (true, false) => ints[i - npts],
        (false, true) => ints[i - 1],
        (false, false) => 0,
    }
}

#[inline]
fn forward_map64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & 0x8000_0000_0000_0000 == 0 {
        bits | 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

#[inline]
fn inverse_map64(m: u64) -> f64 {
    let bits = if m & 0x8000_0000_0000_0000 != 0 { m & 0x7FFF_FFFF_FFFF_FFFF } else { !m };
    f64::from_bits(bits)
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn rice_k_for(values: &[u64]) -> u32 {
    let mean = values.iter().map(|&v| v as u128).sum::<u128>() / values.len().max(1) as u128;
    let mut k = 0u32;
    while (1u128 << (k + 1)) <= mean + 1 && k < 48 {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(n: usize) -> Vec<f64> {
        (0..n).map(|i| 250.0 + 30.0 * (i as f64 * 0.01).sin()).collect()
    }

    #[test]
    fn map64_roundtrip_and_monotone() {
        let vals = [-1e300, -1.0, -1e-300, -0.0, 0.0, 1e-300, 1.0, 1e300];
        let mut prev = None;
        for &v in &vals {
            assert_eq!(inverse_map64(forward_map64(v)).to_bits(), v.to_bits());
            let m = forward_map64(v);
            if let Some(p) = prev {
                assert!(m >= p, "monotone at {v}");
            }
            prev = Some(m);
        }
    }

    #[test]
    fn lossless_roundtrip_exact() {
        let data = smooth(3000);
        let layout = Layout::linear(3000);
        let codec = Fpzip64::lossless();
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(bytes.len() < data.len() * 8, "smooth f64 should compress");
    }

    #[test]
    fn random_doubles_lossless() {
        let mut state = 9u64;
        let data: Vec<f64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                f64::from_bits((state >> 2) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        let layout = Layout::linear(data.len());
        let codec = Fpzip64::lossless();
        let back = codec.decompress(&codec.compress(&data, layout), layout).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_bounds_relative_error() {
        let data = smooth(2000);
        let layout = Layout::linear(2000);
        for precision in [32u8, 48] {
            let codec = Fpzip64::new(precision);
            let back = codec.decompress(&codec.compress(&data, layout), layout).unwrap();
            let bound = 2f64.powi(64 - precision as i32 - 52);
            for (&a, &b) in data.iter().zip(&back) {
                let rel = ((a - b) / a.abs().max(1e-300)).abs();
                assert!(rel <= bound, "p={precision}: {a} -> {b} rel {rel}");
            }
        }
    }

    #[test]
    fn lower_precision_smaller_stream() {
        let data = smooth(4000);
        let layout = Layout::linear(4000);
        let n32 = Fpzip64::new(32).compress(&data, layout).len();
        let n64 = Fpzip64::new(64).compress(&data, layout).len();
        assert!(n32 < n64);
    }

    #[test]
    fn negative_and_mixed() {
        let data: Vec<f64> = (0..2000).map(|i| ((i as f64) * 0.03).sin() * 1e5 - 3e4).collect();
        let layout = Layout::linear(2000);
        let codec = Fpzip64::lossless();
        let back = codec.decompress(&codec.compress(&data, layout), layout).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = smooth(1000);
        let layout = Layout::linear(1000);
        let codec = Fpzip64::lossless();
        let bytes = codec.compress(&data, layout);
        assert!(codec.decompress(&bytes[..bytes.len() / 3], layout).is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_precision_rejected() {
        Fpzip64::new(63);
    }
}
