//! Observability adapter: wraps any [`Codec`] with `cc-obs` spans, byte
//! counters, and decode-rejection counters.
//!
//! [`Variant::codec`](crate::Variant::codec) wraps every instantiated
//! variant in [`ObsCodec`], so each encode/decode through the variant
//! set records:
//!
//! * spans `codec.<name>.encode` / `codec.<name>.decode`;
//! * counters `codec.<name>.encode.bytes_in` / `.bytes_out` and
//!   `codec.<name>.decode.bytes_in` / `.bytes_out` (f32 payload bytes on
//!   the raw side, stream bytes on the coded side);
//! * global rejection counters `decode.corrupt`,
//!   `decode.layout_mismatch`, and `decode.bits_error` on the matching
//!   [`CodecError`].
//!
//! Counter and span names are derived from [`Codec::name`] once, lazily,
//! the first time recording is actually enabled — so the disabled path
//! stays at one atomic load per call and codec construction stays free.

use crate::{Codec, CodecError, CodecProperties, Layout};
use std::sync::OnceLock;

/// Count a decode rejection on the matching global counter. No-op when
/// metric recording is disabled.
pub fn count_decode_error(e: &CodecError) {
    if !cc_obs::metrics_enabled() {
        return;
    }
    match e {
        CodecError::Corrupt(_) => cc_obs::counter_inc("decode.corrupt"),
        CodecError::LayoutMismatch => cc_obs::counter_inc("decode.layout_mismatch"),
        CodecError::Bits(_) => cc_obs::counter_inc("decode.bits_error"),
    }
}

struct ObsNames {
    enc_span: &'static str,
    dec_span: &'static str,
    enc_in: &'static str,
    enc_out: &'static str,
    dec_in: &'static str,
    dec_out: &'static str,
}

/// A [`Codec`] decorated with spans and metrics; transparent to the byte
/// stream (compressing through the wrapper is bit-identical to the inner
/// codec, so determinism and CR claims are untouched).
pub struct ObsCodec<C: Codec> {
    inner: C,
    names: OnceLock<ObsNames>,
}

impl<C: Codec> ObsCodec<C> {
    /// Wrap `inner`.
    pub fn new(inner: C) -> Self {
        ObsCodec { inner, names: OnceLock::new() }
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn names(&self) -> &ObsNames {
        self.names.get_or_init(|| {
            let name = self.inner.name();
            ObsNames {
                enc_span: cc_obs::intern(&format!("codec.{name}.encode")),
                dec_span: cc_obs::intern(&format!("codec.{name}.decode")),
                enc_in: cc_obs::intern(&format!("codec.{name}.encode.bytes_in")),
                enc_out: cc_obs::intern(&format!("codec.{name}.encode.bytes_out")),
                dec_in: cc_obs::intern(&format!("codec.{name}.decode.bytes_in")),
                dec_out: cc_obs::intern(&format!("codec.{name}.decode.bytes_out")),
            }
        })
    }
}

impl<C: Codec> Codec for ObsCodec<C> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn properties(&self) -> CodecProperties {
        self.inner.properties()
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        if !cc_obs::spans_enabled() && !cc_obs::metrics_enabled() {
            return self.inner.compress(data, layout);
        }
        let names = self.names();
        let _s = cc_obs::span(names.enc_span);
        let out = self.inner.compress(data, layout);
        cc_obs::counter_add(names.enc_in, (data.len() * 4) as u64);
        cc_obs::counter_add(names.enc_out, out.len() as u64);
        out
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        if !cc_obs::spans_enabled() && !cc_obs::metrics_enabled() {
            return self.inner.decompress(bytes, layout);
        }
        let names = self.names();
        let _s = cc_obs::span(names.dec_span);
        match self.inner.decompress(bytes, layout) {
            Ok(vals) => {
                cc_obs::counter_add(names.dec_in, bytes.len() as u64);
                cc_obs::counter_add(names.dec_out, (vals.len() * 4) as u64);
                Ok(vals)
            }
            Err(e) => {
                count_decode_error(&e);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::smooth_field;
    use crate::Variant;

    #[test]
    fn wrapper_is_byte_transparent() {
        let (data, layout) = smooth_field(3000, 2);
        let plain = Variant::Fpzip { bits: 24 };
        // Variant::codec() wraps in ObsCodec already; build the inner
        // stack by hand for the reference bytes.
        let inner = crate::guard::SpecialValueGuard::new(crate::fpzip::Fpzip::new(24));
        let wrapped = ObsCodec::new(crate::guard::SpecialValueGuard::new(
            crate::fpzip::Fpzip::new(24),
        ));
        let a = inner.compress(&data, layout);
        let b = wrapped.compress(&data, layout);
        let c = plain.codec().compress(&data, layout);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(
            wrapped.decompress(&a, layout).unwrap(),
            inner.decompress(&a, layout).unwrap()
        );
        assert_eq!(wrapped.name(), inner.name());
        assert_eq!(wrapped.properties(), inner.properties());
    }
}
