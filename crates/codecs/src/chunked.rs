//! Chunked, data-parallel encode/decode over any [`Codec`].
//!
//! A field is split into independently-coded blocks along its
//! slowest-varying axis — vertical levels for 3-D fields, embedding rows
//! for 2-D fields — and the blocks fan out over the shared scoped-thread
//! pool ([`cc_par`]). Each block is a complete, self-contained stream of
//! the wrapped codec (including its own layout echo for the block's
//! sub-layout), framed with a little-endian `u32` length prefix behind
//! the whole-field 16-byte layout echo:
//!
//! ```text
//! [16-byte layout echo][u32 chunk_count][u32 len_0][block_0] ... [u32 len_k-1][block_k-1]
//! ```
//!
//! **Single-chunk pass-through.** When the partition yields exactly one
//! chunk (any field at or under [`TARGET_CHUNK_ELEMS`]), the chunked
//! stream *is* the wrapped codec's plain stream — no extra framing. This
//! keeps small-field compression ratios byte-identical to the unchunked
//! path (the scorecard's CR claims hold at every scale) and costs
//! nothing: the decoder recomputes the same partition from the layout,
//! so it knows which format to expect.
//!
//! **Determinism.** The partition ([`plan`]) is a pure function of the
//! [`Layout`] alone — never of the worker count — and
//! [`cc_par::par_map_with`] returns results in input order, so the bytes
//! produced at any worker count are identical to the sequential
//! (`workers = 1`) bytes, and a stream decodes to the same floats
//! whatever parallelism the decoder uses. The determinism test suite
//! (`crates/codecs/tests/determinism.rs`) enforces this for every paper
//! codec.
//!
//! **Totality.** Decoding recomputes the expected partition from the
//! caller's layout (accepting either the current partition's frame count
//! or the pre-overhaul whole-level partition's, for streams written
//! before sub-level splitting), so a corrupt chunk count or length can
//! only produce [`CodecError::Corrupt`] — never an oversized allocation:
//! the output buffer is sized from the caller-supplied layout and every
//! block is decoded by the wrapped codec's own hardened path.

use crate::{
    check_layout_header, write_layout_header, Codec, CodecError, Layout, LAYOUT_HEADER_LEN,
};

/// Target number of f32 elements per chunk (256 KiB of raw data). Chosen
/// so a ≥1M-point field yields enough blocks to keep 8+ workers busy
/// while each block stays large enough for the codecs' internal windows
/// (ISABELA sorting windows, APAX blocks, wavelet tiles) to behave as
/// they do unchunked.
pub const TARGET_CHUNK_ELEMS: usize = 64 * 1024;

/// One block of the deterministic partition: `start` is the element
/// offset into the level-major field, `layout` the block's sub-layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Element offset of the block within the field.
    pub start: usize,
    /// Sub-layout the block is coded under.
    pub layout: Layout,
}

/// The deterministic partition of `layout` into chunk sub-layouts.
///
/// Pure in `layout`: the same layout always yields the same partition,
/// which is what makes parallel output bit-identical to sequential.
/// Small 3-D fields group whole levels per chunk; 3-D fields whose
/// levels each exceed [`TARGET_CHUNK_ELEMS`] split *within* every level
/// along whole embedding rows, so a four-level bench field keeps eight
/// workers busy instead of idling half the pool on four whole-level
/// blocks. 2-D fields split along whole rows of their 2-D embedding (so
/// transform codecs keep row structure), with the final block absorbing
/// any partial row.
pub fn plan(layout: Layout) -> Vec<ChunkSpec> {
    if layout.is_empty() {
        return Vec::new();
    }
    let mut specs = Vec::new();
    if layout.nlev > 1 && layout.npts > TARGET_CHUNK_ELEMS {
        // Levels too large to be a chunk each: split within every level
        // along whole rows, exactly as the 2-D rule does per level.
        for lev in 0..layout.nlev {
            push_row_chunks(&mut specs, lev * layout.npts, layout.npts, layout.cols);
        }
    } else if layout.nlev > 1 {
        let levs_per = (TARGET_CHUNK_ELEMS / layout.npts.max(1)).max(1);
        let mut lev = 0;
        while lev < layout.nlev {
            let l1 = (lev + levs_per).min(layout.nlev);
            specs.push(ChunkSpec {
                start: lev * layout.npts,
                layout: Layout {
                    nlev: l1 - lev,
                    npts: layout.npts,
                    rows: layout.rows,
                    cols: layout.cols,
                },
            });
            lev = l1;
        }
    } else {
        push_row_chunks(&mut specs, 0, layout.npts, layout.cols);
    }
    specs
}

/// Append row-aligned chunks covering `npts` elements starting at field
/// offset `base`, each at most [`TARGET_CHUNK_ELEMS`] (rounded up to
/// whole rows of `cols`).
fn push_row_chunks(specs: &mut Vec<ChunkSpec>, base: usize, npts: usize, cols: usize) {
    let cols = cols.max(1);
    let elems_per = (TARGET_CHUNK_ELEMS / cols).max(1) * cols;
    let mut start = 0;
    while start < npts {
        let end = (start + elems_per).min(npts);
        let n = end - start;
        specs.push(ChunkSpec {
            start: base + start,
            layout: Layout { nlev: 1, npts: n, rows: n.div_ceil(cols), cols },
        });
        start = end;
    }
}

/// The pre-overhaul partition: 3-D fields always split along whole
/// levels, never within one. Kept (and tried by [`decompress_chunked`]
/// when the stream's frame count does not match [`plan`]) so chunked
/// streams written before sub-level splitting still decode.
pub fn plan_legacy(layout: Layout) -> Vec<ChunkSpec> {
    if layout.is_empty() {
        return Vec::new();
    }
    let mut specs = Vec::new();
    if layout.nlev > 1 {
        let levs_per = (TARGET_CHUNK_ELEMS / layout.npts.max(1)).max(1);
        let mut lev = 0;
        while lev < layout.nlev {
            let l1 = (lev + levs_per).min(layout.nlev);
            specs.push(ChunkSpec {
                start: lev * layout.npts,
                layout: Layout {
                    nlev: l1 - lev,
                    npts: layout.npts,
                    rows: layout.rows,
                    cols: layout.cols,
                },
            });
            lev = l1;
        }
    } else {
        push_row_chunks(&mut specs, 0, layout.npts, layout.cols);
    }
    specs
}

/// Compress `data` as a chunked stream, fanning blocks over `workers`
/// threads. `workers = 1` is the sequential reference; any other count
/// produces bit-identical bytes.
pub fn compress_chunked(
    codec: &dyn Codec,
    data: &[f32],
    layout: Layout,
    workers: usize,
) -> Vec<u8> {
    assert_eq!(data.len(), layout.len(), "data length must match layout");
    let _s = cc_obs::span("chunked.encode");
    let specs = plan(layout);
    cc_obs::counter_add("chunked.chunks_encoded", specs.len() as u64);
    if specs.len() == 1 {
        // Pass-through: a single chunk is the whole field, so the plain
        // stream (with its ordinary layout echo) is the chunked stream.
        return encode_chunk(codec, data, layout);
    }
    let payloads: Vec<Vec<u8>> = cc_par::par_map_with(workers, &specs, |s| {
        encode_chunk(codec, &data[s.start..s.start + s.layout.len()], s.layout)
    });
    let total = LAYOUT_HEADER_LEN + 4 + payloads.iter().map(|p| 4 + p.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    write_layout_header(&mut out, layout);
    out.extend_from_slice(&(specs.len() as u32).to_le_bytes());
    for p in &payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Compress `data` as a chunked stream, emitting bytes through `sink`
/// as each chunk finishes encoding instead of materializing the whole
/// stream first. The concatenation of every `sink` call is byte-for-byte
/// identical to `compress_chunked(codec, data, layout, 1)` — chunks are
/// encoded sequentially in plan order, so a consumer (e.g. a streaming
/// server reply) can forward early pieces while later chunks are still
/// being compressed. Returns the total bytes emitted.
pub fn compress_chunked_stream(
    codec: &dyn Codec,
    data: &[f32],
    layout: Layout,
    sink: &mut dyn FnMut(&[u8]),
) -> usize {
    assert_eq!(data.len(), layout.len(), "data length must match layout");
    let _s = cc_obs::span("chunked.encode");
    let specs = plan(layout);
    cc_obs::counter_add("chunked.chunks_encoded", specs.len() as u64);
    if specs.len() == 1 {
        // Pass-through, same as compress_chunked: the plain stream is
        // the chunked stream, delivered as one piece.
        let block = encode_chunk(codec, data, layout);
        sink(&block);
        return block.len();
    }
    let mut header = Vec::with_capacity(LAYOUT_HEADER_LEN + 4);
    write_layout_header(&mut header, layout);
    header.extend_from_slice(&(specs.len() as u32).to_le_bytes());
    sink(&header);
    let mut total = header.len();
    for s in &specs {
        let block = encode_chunk(codec, &data[s.start..s.start + s.layout.len()], s.layout);
        sink(&(block.len() as u32).to_le_bytes());
        sink(&block);
        total += 4 + block.len();
    }
    total
}

/// Compress one chunk, recording its wall time on the
/// `chunked.chunk_encode_us` histogram and its in/out volume on the
/// per-chunk byte counters.
fn encode_chunk(codec: &dyn Codec, data: &[f32], layout: Layout) -> Vec<u8> {
    let t0 = cc_obs::now_ns();
    let out = codec.compress(data, layout);
    cc_obs::observe("chunked.chunk_encode_us", (cc_obs::now_ns() - t0) / 1_000);
    cc_obs::counter_add("chunked.chunk_bytes_in", (data.len() * 4) as u64);
    cc_obs::counter_add("chunked.chunk_bytes_out", out.len() as u64);
    out
}

/// Decode a chunked stream produced by [`compress_chunked`]. Total over
/// untrusted input: framing damage returns [`CodecError::Corrupt`] and
/// block damage surfaces the wrapped codec's error; allocations are
/// bounded by the caller-supplied layout.
///
/// The frame count is read from the stream and matched against the
/// current partition first and the pre-overhaul whole-level partition
/// ([`plan_legacy`]) second, so streams written before sub-level
/// splitting still decode; a count matching neither is [`CodecError::Corrupt`].
pub fn decompress_chunked(
    codec: &dyn Codec,
    bytes: &[u8],
    layout: Layout,
    workers: usize,
) -> Result<Vec<f32>, CodecError> {
    let _s = cc_obs::span("chunked.decode");
    let specs = plan(layout);
    if specs.len() == 1 {
        let vals = codec.decompress(bytes, layout)?;
        if vals.len() != layout.len() {
            return Err(reject(CodecError::Corrupt("stream decoded to wrong length")));
        }
        cc_obs::counter_inc("chunked.chunks_decoded");
        return Ok(vals);
    }
    let body = check_layout_header(bytes, layout).map_err(reject)?;
    if body.len() < 4 {
        return Err(reject(CodecError::Corrupt("truncated chunk count")));
    }
    let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
    let specs = if count == specs.len() {
        specs
    } else {
        // Pre-overhaul streams partitioned 3-D fields along whole levels;
        // accept their frame count too. (The counts can only coincide when
        // the partitions are identical, so there is no ambiguity.)
        let legacy = plan_legacy(layout);
        if count != legacy.len() {
            return Err(reject(CodecError::Corrupt(
                "chunk count matches neither current nor legacy partition",
            )));
        }
        legacy
    };
    let mut frames: Vec<(&[u8], ChunkSpec)> = Vec::with_capacity(specs.len());
    let mut off = 4;
    for s in &specs {
        if body.len() - off < 4 {
            return Err(reject(CodecError::Corrupt("truncated chunk length prefix")));
        }
        let len =
            u32::from_le_bytes([body[off], body[off + 1], body[off + 2], body[off + 3]]) as usize;
        off += 4;
        if body.len() - off < len {
            return Err(reject(CodecError::Corrupt("truncated chunk payload")));
        }
        frames.push((&body[off..off + len], *s));
        off += len;
    }
    if off != body.len() {
        return Err(reject(CodecError::Corrupt("trailing bytes after chunk frames")));
    }
    let decoded: Vec<Result<Vec<f32>, CodecError>> =
        cc_par::par_map_with(workers, &frames, |&(payload, spec)| {
            let vals = codec.decompress(payload, spec.layout)?;
            if vals.len() != spec.layout.len() {
                return Err(reject(CodecError::Corrupt("chunk decoded to wrong length")));
            }
            Ok(vals)
        });
    let mut out = Vec::with_capacity(layout.len());
    for d in decoded {
        out.extend_from_slice(&d?);
    }
    cc_obs::counter_add("chunked.chunks_decoded", frames.len() as u64);
    Ok(out)
}

/// Count a chunked-framing rejection on the shared decode counters.
/// Chunk payloads decoded by an instrumented inner codec are counted by
/// that codec's own wrapper, so only framing errors are tallied here.
fn reject(e: CodecError) -> CodecError {
    crate::obs_wrap::count_decode_error(&e);
    e
}

/// [`Codec`] adapter running any inner codec through the chunked path at
/// a fixed worker count, so chunked compression can slot anywhere a
/// codec is expected (the bench harness, the `ccc` CLI).
pub struct ChunkedCodec<C: Codec> {
    inner: C,
    workers: usize,
}

impl<C: Codec> ChunkedCodec<C> {
    /// Wrap `inner`, fanning chunks over `workers` threads.
    pub fn new(inner: C, workers: usize) -> Self {
        ChunkedCodec { inner, workers }
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Codec> Codec for ChunkedCodec<C> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn properties(&self) -> crate::CodecProperties {
        self.inner.properties()
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        compress_chunked(&self.inner, data, layout, self.workers)
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        decompress_chunked(&self.inner, bytes, layout, self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::smooth_field;
    use crate::Variant;

    #[test]
    fn plan_covers_field_exactly_once() {
        for layout in [
            Layout::linear(1),
            Layout::linear(100),
            Layout::linear(TARGET_CHUNK_ELEMS),
            Layout::linear(TARGET_CHUNK_ELEMS + 1),
            Layout::linear(5 * TARGET_CHUNK_ELEMS - 1),
            Layout { nlev: 7, npts: 10_000, rows: 100, cols: 100 },
            Layout { nlev: 30, npts: 48_602, rows: 221, cols: 220 },
            Layout { nlev: 4, npts: 3 * TARGET_CHUNK_ELEMS + 5, rows: 444, cols: 443 },
            Layout { nlev: 2, npts: 100_000, rows: 317, cols: 317 },
        ] {
            let specs = plan(layout);
            let mut covered = 0;
            for (i, s) in specs.iter().enumerate() {
                assert_eq!(s.start, covered, "chunk {i} not contiguous");
                assert!(!s.layout.is_empty(), "empty chunk {i}");
                assert!(
                    s.layout.rows * s.layout.cols >= s.layout.npts,
                    "chunk {i} embedding too small"
                );
                covered += s.layout.len();
            }
            assert_eq!(covered, layout.len(), "partition must cover the field");
        }
    }

    #[test]
    fn plan_empty_layout() {
        assert!(plan(Layout::linear(0)).is_empty());
        assert!(plan(Layout { nlev: 0, npts: 50, rows: 8, cols: 8 }).is_empty());
    }

    #[test]
    fn multi_chunk_roundtrip_matches_sequential() {
        let (data, layout) = smooth_field(50_000, 3);
        assert!(plan(layout).len() >= 2, "field must span chunks");
        let codec = Variant::Fpzip { bits: 24 }.codec();
        let seq = compress_chunked(codec.as_ref(), &data, layout, 1);
        let par = compress_chunked(codec.as_ref(), &data, layout, 4);
        assert_eq!(seq, par, "parallel bytes must equal sequential bytes");
        let a = decompress_chunked(codec.as_ref(), &seq, layout, 1).unwrap();
        let b = decompress_chunked(codec.as_ref(), &seq, layout, 4).unwrap();
        assert_eq!(a.len(), data.len());
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_encode_concatenates_to_sequential_bytes() {
        // Multi-chunk: pieces must arrive incrementally (more than one
        // sink call) and concatenate to the workers=1 reference.
        let (data, layout) = smooth_field(50_000, 3);
        assert!(plan(layout).len() >= 2, "field must span chunks");
        for variant in [Variant::Fpzip { bits: 24 }, Variant::NetCdf4] {
            let codec = variant.codec();
            let reference = compress_chunked(codec.as_ref(), &data, layout, 1);
            let mut pieces = 0usize;
            let mut streamed = Vec::new();
            let total = compress_chunked_stream(codec.as_ref(), &data, layout, &mut |b| {
                pieces += 1;
                streamed.extend_from_slice(b);
            });
            assert_eq!(total, streamed.len());
            assert_eq!(streamed, reference, "streamed bytes must equal sequential bytes");
            assert!(pieces > 2, "multi-chunk encode must emit incrementally, got {pieces}");
        }
        // Single-chunk pass-through: one piece, equal to the plain stream.
        let (data, layout) = smooth_field(2_000, 1);
        let codec = Variant::Fpzip { bits: 24 }.codec();
        let mut pieces = 0usize;
        let mut streamed = Vec::new();
        compress_chunked_stream(codec.as_ref(), &data, layout, &mut |b| {
            pieces += 1;
            streamed.extend_from_slice(b);
        });
        assert_eq!(pieces, 1);
        assert_eq!(streamed, compress_chunked(codec.as_ref(), &data, layout, 1));
    }

    #[test]
    fn wrapper_equals_free_functions() {
        let (data, layout) = smooth_field(3_000, 2);
        let inner = Variant::Apax { rate: 4.0 }.codec();
        let bytes = compress_chunked(inner.as_ref(), &data, layout, 2);
        let wrapped = ChunkedCodec::new(Variant::Apax { rate: 4.0 }.codec(), 2);
        assert_eq!(wrapped.compress(&data, layout), bytes);
        assert_eq!(
            wrapped.decompress(&bytes, layout).unwrap(),
            decompress_chunked(inner.as_ref(), &bytes, layout, 1).unwrap()
        );
    }

    #[test]
    fn single_chunk_stream_is_plain_stream() {
        let (data, layout) = smooth_field(2_000, 1);
        assert_eq!(plan(layout).len(), 1);
        let codec = Variant::Fpzip { bits: 24 }.codec();
        let chunked = compress_chunked(codec.as_ref(), &data, layout, 4);
        let plain = codec.compress(&data, layout);
        assert_eq!(chunked, plain, "single-chunk framing must be pass-through");
        assert_eq!(
            decompress_chunked(codec.as_ref(), &plain, layout, 4).unwrap(),
            codec.decompress(&chunked, layout).unwrap()
        );
    }

    #[test]
    fn corrupt_count_and_lengths_error() {
        let (data, layout) = smooth_field(40_000, 4);
        assert!(plan(layout).len() >= 2, "field must span chunks");
        let codec = Variant::NetCdf4.codec();
        let good = compress_chunked(codec.as_ref(), &data, layout, 1);

        // Truncated everywhere.
        for cut in [0, 8, LAYOUT_HEADER_LEN, LAYOUT_HEADER_LEN + 2, good.len() - 1] {
            assert!(
                decompress_chunked(codec.as_ref(), &good[..cut], layout, 1).is_err(),
                "cut at {cut} must error"
            );
        }
        // Wrong chunk count.
        let mut bad = good.clone();
        bad[LAYOUT_HEADER_LEN] ^= 0x7F;
        assert!(decompress_chunked(codec.as_ref(), &bad, layout, 1).is_err());
        // Oversized chunk length.
        let mut bad = good.clone();
        bad[LAYOUT_HEADER_LEN + 4 + 3] = 0xFF;
        assert!(decompress_chunked(codec.as_ref(), &bad, layout, 1).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.extend_from_slice(b"xx");
        assert!(decompress_chunked(codec.as_ref(), &bad, layout, 1).is_err());
        // Pristine stream still decodes.
        assert_eq!(
            decompress_chunked(codec.as_ref(), &good, layout, 1).unwrap(),
            data
        );
    }

    #[test]
    fn sub_level_plan_splits_large_levels() {
        // Bench shape: 4 levels, each level ~3 chunks' worth of points.
        let layout = Layout { nlev: 4, npts: 3 * TARGET_CHUNK_ELEMS, rows: 444, cols: 443 };
        let specs = plan(layout);
        assert!(
            specs.len() >= 2 * layout.nlev,
            "large levels must split within levels: got {} chunks",
            specs.len()
        );
        assert!(specs.iter().all(|s| s.layout.nlev == 1));
        // Each chunk begins on a row boundary of its level.
        for s in &specs {
            let within = s.start % layout.npts;
            assert_eq!(within % layout.cols, 0, "chunk at {} not row-aligned", s.start);
        }
        // Small levels keep the whole-level grouping.
        let small = Layout { nlev: 4, npts: 10_000, rows: 100, cols: 100 };
        assert_eq!(plan(small), plan_legacy(small));
    }

    #[test]
    fn legacy_whole_level_stream_decodes() {
        // A field whose levels exceed TARGET_CHUNK_ELEMS: the current
        // plan splits within levels, the pre-overhaul plan did not.
        let layout = Layout { nlev: 2, npts: 100_000, rows: 317, cols: 317 };
        let (data, _) = smooth_field(layout.len(), 1);
        let legacy_specs = plan_legacy(layout);
        assert_eq!(legacy_specs.len(), 2);
        assert_ne!(plan(layout).len(), legacy_specs.len(), "plans must diverge here");

        let codec = Variant::NetCdf4.codec();
        // Rebuild the pre-overhaul stream from per-chunk plain streams.
        let mut legacy = Vec::new();
        write_layout_header(&mut legacy, layout);
        legacy.extend_from_slice(&(legacy_specs.len() as u32).to_le_bytes());
        for s in &legacy_specs {
            let p = codec.compress(&data[s.start..s.start + s.layout.len()], s.layout);
            legacy.extend_from_slice(&(p.len() as u32).to_le_bytes());
            legacy.extend_from_slice(&p);
        }
        let back = decompress_chunked(codec.as_ref(), &legacy, layout, 2).unwrap();
        assert_eq!(back, data, "legacy whole-level stream must still decode");

        // A frame count matching neither partition is corrupt.
        let mut bad = legacy.clone();
        bad[LAYOUT_HEADER_LEN] = 7;
        assert!(decompress_chunked(codec.as_ref(), &bad, layout, 1).is_err());
    }

    #[test]
    fn empty_field_roundtrips() {
        let layout = Layout::linear(0);
        let codec = Variant::NetCdf4.codec();
        let bytes = compress_chunked(codec.as_ref(), &[], layout, 4);
        let back = decompress_chunked(codec.as_ref(), &bytes, layout, 4).unwrap();
        assert!(back.is_empty());
    }
}
