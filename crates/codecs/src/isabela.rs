//! ISABELA-style sort-and-spline compression.
//!
//! Follows the published ISABELA design (Lakshminarasimhan et al., 2011):
//! the data is cut into fixed windows (the recommended — and paper-used —
//! size of 1024 points), each window is *sorted* so the sequence becomes
//! monotone and extremely smooth, a cubic B-spline is least-squares fitted
//! to the sorted curve, and the sorting permutation index is stored so the
//! original order can be restored. Points whose reconstruction misses the
//! user's per-point relative-error bound get exact corrections.
//!
//! The permutation index costs `log2(1024) = 10` bits per point — 31% of a
//! 32-bit value before anything else is stored. That floor is why the paper
//! observes ISABELA's compression ratios cluster around 0.36-0.57 on
//! single-precision data and notes it "would obtain better compression
//! ratios on double-precision data".
//!
//! Windows decode independently (`decompress_window`), reproducing
//! ISABELA's random-access selling point.

use crate::{Codec, CodecError, CodecProperties, Layout};
use cc_lossless::bitio::{BitReader, BitWriter};

/// Window size recommended by the ISABELA authors and used in the paper.
pub const WINDOW: usize = 1024;

/// Number of B-spline coefficients per window.
const NCOEFF: usize = 30;

/// Windows smaller than this are stored raw (spline fit is pointless).
const MIN_FIT: usize = 16;

/// Curve-fitting family for the sorted window — "a curve-fitting
/// approximation, such as a B-spline or wavelet" (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fit {
    /// Least-squares cubic B-spline (the variant the paper evaluates:
    /// "We apply the B-spline variant of ISABELA").
    BSpline,
    /// Truncated linear-lifting wavelet approximation of the sorted curve.
    Wavelet,
}

/// ISABELA with a per-point relative error bound (e.g. `0.01` = 1.0%,
/// matching the paper's ISA-1.0 variant).
#[derive(Debug, Clone, Copy)]
pub struct Isabela {
    rel_err: f64,
    fit: Fit,
}

impl Isabela {
    /// Create with a relative-error bound (fraction, not percent); uses
    /// the paper's B-spline fit.
    pub fn new(rel_err: f64) -> Self {
        assert!(rel_err > 0.0 && rel_err < 1.0, "rel_err must be in (0,1)");
        Isabela { rel_err, fit: Fit::BSpline }
    }

    /// Select the curve-fitting family.
    pub fn with_fit(mut self, fit: Fit) -> Self {
        self.fit = fit;
        self
    }

    /// The fit family in use.
    pub fn fit(&self) -> Fit {
        self.fit
    }

    /// The paper's three variants: ISA-1.0, ISA-0.5, ISA-0.1 (percent).
    pub fn paper_variants() -> [Isabela; 3] {
        [Isabela::new(0.001), Isabela::new(0.005), Isabela::new(0.01)]
    }

    /// The relative error bound (fraction).
    pub fn rel_err(&self) -> f64 {
        self.rel_err
    }

    fn compress_window(&self, window: &[f32], w: &mut BitWriter, scratch: &mut WindowScratch) {
        let n = window.len();
        let idx_bits = bits_for(n);

        if n < MIN_FIT {
            w.write_bits(0, 1); // raw marker
            for &v in window {
                w.write_bits(v.to_bits() as u64, 32);
            }
            w.align_byte();
            return;
        }
        w.write_bits(1, 1); // fitted marker

        // Sort positions by value, ties by index: a stable LSD radix sort
        // on a total-order u32 key packed above the index. No per-window
        // allocation — the key buffers live in the caller's scratch.
        scratch.packed.clear();
        scratch
            .packed
            .extend(window.iter().enumerate().map(|(i, &v)| ((sort_key(v) as u64) << 32) | i as u64));
        radix_sort_by_high32(&mut scratch.packed, &mut scratch.radix_tmp);
        scratch.sorted.clear();
        scratch
            .sorted
            .extend(scratch.packed.iter().map(|&p| window[(p & 0xFFFF_FFFF) as usize] as f64));
        let sorted = &scratch.sorted;

        // Fit the sorted, monotone curve with the configured family.
        // Coefficients are rounded to f32 *before* the correction pass so
        // encoder and decoder evaluate the identical curve.
        let ncoeff = NCOEFF.min(n / 2).max(4);
        if self.fit == Fit::BSpline {
            scratch.basis.ensure(n, ncoeff);
        }
        scratch.coeffs.clear();
        match self.fit {
            Fit::BSpline => fit_bspline_cached(sorted, ncoeff, &scratch.basis, &mut scratch.ata, &mut scratch.coeffs),
            Fit::Wavelet => scratch.coeffs.extend(fit_wavelet(sorted, ncoeff)),
        }
        for c in scratch.coeffs.iter_mut() {
            *c = *c as f32 as f64;
        }
        let coeffs = &scratch.coeffs;

        // Permutation index: 10 bits per point at the standard window size.
        for &p in &scratch.packed {
            w.write_bits(p & 0xFFFF_FFFF, idx_bits);
        }
        // Spline coefficients as f32.
        w.write_bits(ncoeff as u64, 8);
        for &c in coeffs.iter() {
            w.write_bits((c as f32).to_bits() as u64, 32);
        }
        // Error-compensation stream (ISABELA's "error quantization"): a
        // quantized correction per point, step = rel_err·|fit| so the
        // reconstruction lands within the bound. Mostly zeros on sorted
        // data, so the Rice stream stays small. Points the quantized
        // correction cannot rescue (|fit| ≪ |v|, sign flips, exact zeros)
        // fall back to exact f32 escapes.
        scratch.qs.clear();
        scratch.escapes.clear();
        for (s, &v) in sorted.iter().enumerate() {
            let fit = self.eval_curve_cached(coeffs, s, n, &scratch.basis);
            let step = self.rel_err * fit.abs().max(1e-300);
            let q = ((v - fit) / step).round();
            let recon = (fit + q * step) as f32;
            let ok = q.abs() < 1e9
                && ((recon as f64 - v) / v.abs().max(1e-30)).abs() <= self.rel_err;
            if ok {
                scratch.qs.push(zigzag_i64(q as i64));
            } else {
                scratch.qs.push(0);
                scratch.escapes.push((s as u32, v as f32));
            }
        }
        let mean = scratch.qs.iter().sum::<u64>() / n as u64;
        let mut k = 0u32;
        while (1u64 << (k + 1)) <= mean + 1 && k < 30 {
            k += 1;
        }
        w.write_bits(k as u64, 6);
        for &q in &scratch.qs {
            w.write_rice(q, k);
        }
        w.write_bits(scratch.escapes.len() as u64, 32);
        for &(pos, val) in &scratch.escapes {
            w.write_bits(pos as u64, idx_bits);
            w.write_bits(val.to_bits() as u64, 32);
        }
        w.align_byte();
    }

    fn decompress_window_inner(
        &self,
        r: &mut BitReader<'_>,
        n: usize,
        basis: &mut BasisCache,
    ) -> Result<Vec<f32>, CodecError> {
        let idx_bits = bits_for(n);
        let fitted = r.read_bits(1)? == 1;
        if !fitted {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(f32::from_bits(r.read_bits(32)? as u32));
            }
            r.align_byte();
            return Ok(out);
        }
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.read_bits(idx_bits)? as usize;
            if i >= n {
                return Err(CodecError::Corrupt("permutation index out of range"));
            }
            order.push(i);
        }
        let ncoeff = r.read_bits(8)? as usize;
        if !(4..=255).contains(&ncoeff) {
            return Err(CodecError::Corrupt("bad coefficient count"));
        }
        let mut coeffs = Vec::with_capacity(ncoeff);
        for _ in 0..ncoeff {
            coeffs.push(f32::from_bits(r.read_bits(32)? as u32) as f64);
        }
        let k = r.read_bits(6)? as u32;
        if k > 40 {
            return Err(CodecError::Corrupt("bad rice parameter"));
        }
        if self.fit == Fit::BSpline {
            basis.ensure(n, ncoeff);
        }
        let mut sorted: Vec<f32> = Vec::with_capacity(n);
        for s in 0..n {
            let fit = self.eval_curve_cached(&coeffs, s, n, basis);
            let q = unzigzag_i64(r.read_rice(k)?) as f64;
            let step = self.rel_err * fit.abs().max(1e-300);
            sorted.push((fit + q * step) as f32);
        }
        let ncorr = r.read_bits(32)? as usize;
        if ncorr > n {
            return Err(CodecError::Corrupt("too many corrections"));
        }
        for _ in 0..ncorr {
            let pos = r.read_bits(idx_bits)? as usize;
            let val = f32::from_bits(r.read_bits(32)? as u32);
            if pos >= n {
                return Err(CodecError::Corrupt("correction index out of range"));
            }
            sorted[pos] = val;
        }
        r.align_byte();
        // Un-permute: sorted position s holds original index order[s].
        let mut out = vec![0.0f32; n];
        for (s, &orig) in order.iter().enumerate() {
            out[orig] = sorted[s];
        }
        Ok(out)
    }

    /// Decode a single window (`window_idx`) without touching the rest of
    /// the stream — ISABELA's random-access feature.
    pub fn decompress_window(
        &self,
        bytes: &[u8],
        layout: Layout,
        window_idx: usize,
    ) -> Result<Vec<f32>, CodecError> {
        let bytes = crate::check_layout_header(bytes, layout)?;
        let n_total = layout.len();
        let n_windows = n_total.div_ceil(WINDOW);
        if window_idx >= n_windows {
            return Err(CodecError::Corrupt("window index out of range"));
        }
        // Offset table: n_windows u32 byte offsets after a 4-byte count.
        if bytes.len() < 4 + 4 * n_windows {
            return Err(CodecError::Corrupt("truncated window table"));
        }
        let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if count != n_windows {
            return Err(CodecError::LayoutMismatch);
        }
        let off_pos = 4 + 4 * window_idx;
        let off = u32::from_le_bytes([
            bytes[off_pos],
            bytes[off_pos + 1],
            bytes[off_pos + 2],
            bytes[off_pos + 3],
        ]) as usize;
        if off > bytes.len() {
            return Err(CodecError::Corrupt("window offset out of range"));
        }
        let n = WINDOW.min(n_total - window_idx * WINDOW);
        let mut r = BitReader::new(&bytes[off..]);
        self.decompress_window_inner(&mut r, n, &mut BasisCache::default())
    }
}

impl Isabela {
    /// Evaluate the fitted curve at sorted position `s`, using the basis
    /// cache for the B-spline family (the caller must have `ensure`d it
    /// for this `(n, coeffs.len())`).
    fn eval_curve_cached(&self, coeffs: &[f64], s: usize, n: usize, basis: &BasisCache) -> f64 {
        match self.fit {
            Fit::BSpline => {
                let (first, wts) = basis.at(s);
                let mut v = 0.0;
                for a in 0..4 {
                    if first + a < coeffs.len() {
                        v += wts[a] * coeffs[first + a];
                    }
                }
                v
            }
            Fit::Wavelet => eval_wavelet(coeffs, s, n),
        }
    }
}

/// Per-field scratch threaded through [`Isabela::compress_window`]: the
/// sort buffers, the fit workspace, and the quantization streams are
/// allocated once per field instead of twice per 1024-point window.
#[derive(Debug, Default)]
struct WindowScratch {
    /// `(sort_key << 32) | index`, radix-sorted by the high half.
    packed: Vec<u64>,
    /// Radix ping-pong buffer.
    radix_tmp: Vec<u64>,
    /// Window values in sorted order.
    sorted: Vec<f64>,
    /// Fitted coefficients (f32-rounded).
    coeffs: Vec<f64>,
    /// Zigzagged quantized corrections.
    qs: Vec<u64>,
    /// Exact-value escapes `(sorted position, value)`.
    escapes: Vec<(u32, f32)>,
    /// Normal-equation matrix workspace for the B-spline fit.
    ata: Vec<f64>,
    /// Memoized B-spline basis rows.
    basis: BasisCache,
}

/// Memoized cubic B-spline basis: row `s` holds `bspline_basis(u_s, c)`
/// for `u_s = s/(n-1)`. Both the least-squares fit and curve evaluation
/// sample the basis at exactly these parameters, so one table serves the
/// fit, the encoder's correction pass, and the decoder — and memoization
/// changes no arithmetic, keeping streams bit-identical. All full
/// windows share `(n, c) = (1024, 30)`, so the table is built once per
/// field.
#[derive(Debug, Default)]
struct BasisCache {
    n: usize,
    c: usize,
    entries: Vec<(u32, [f64; 4])>,
}

impl BasisCache {
    /// Recompute the table iff the `(n, c)` signature changed.
    fn ensure(&mut self, n: usize, c: usize) {
        if self.n == n && self.c == c && !self.entries.is_empty() {
            return;
        }
        self.n = n;
        self.c = c;
        self.entries.clear();
        self.entries.reserve(n);
        for s in 0..n {
            let u = if n <= 1 { 0.0 } else { s as f64 / (n - 1) as f64 };
            let (first, wts) = bspline_basis(u, c);
            self.entries.push((first as u32, wts));
        }
    }

    /// Basis row for sorted position `s`.
    #[inline]
    fn at(&self, s: usize) -> (usize, &[f64; 4]) {
        let (first, ref wts) = self.entries[s];
        (first as usize, wts)
    }
}

/// Map an `f32` to a `u32` whose unsigned order matches `<` on all
/// non-NaN values, with `-0.0` collapsed onto `+0.0` so the two zeros
/// stay tied (resolved by index, as the old comparator did). NaNs get a
/// consistent position past the infinities — deterministic, and never
/// reached through [`crate::guard::SpecialValueGuard`], which fills
/// non-finite values before the inner codec runs.
#[inline]
fn sort_key(v: f32) -> u32 {
    let b = v.to_bits();
    if b == 0x8000_0000 {
        0x8000_0000 // -0.0 → same key as +0.0
    } else if b & 0x8000_0000 != 0 {
        !b
    } else {
        b ^ 0x8000_0000
    }
}

/// Stable LSD radix sort of `packed` by its high 32 bits (four 8-bit
/// passes). Stability plus index-major packing reproduces the old
/// `sort_by(value, then index)` order exactly. Passes whose byte is
/// constant across the slice are skipped — on climate-like data the top
/// (sign/exponent) byte almost always is.
fn radix_sort_by_high32(packed: &mut Vec<u64>, tmp: &mut Vec<u64>) {
    let len = packed.len();
    tmp.resize(len, 0);
    for pass in 0..4 {
        let shift = 32 + pass * 8;
        let mut hist = [0u32; 256];
        for &v in packed.iter() {
            hist[((v >> shift) & 0xFF) as usize] += 1;
        }
        if hist.iter().any(|&h| h as usize == len) {
            continue; // single bucket: the pass is the identity
        }
        let mut starts = [0u32; 256];
        let mut acc = 0u32;
        for (b, &h) in hist.iter().enumerate() {
            starts[b] = acc;
            acc += h;
        }
        for &v in packed.iter() {
            let b = ((v >> shift) & 0xFF) as usize;
            tmp[starts[b] as usize] = v;
            starts[b] += 1;
        }
        std::mem::swap(packed, tmp);
    }
}

/// "Wavelet" fit: the low-pass branch of a linear-lifting wavelet — the
/// sorted curve sampled at `c` dyadic knots; synthesis is the linear
/// interpolation the lifting scheme's inverse performs when all detail
/// coefficients are truncated to zero.
fn fit_wavelet(sorted: &[f64], c: usize) -> Vec<f64> {
    let n = sorted.len();
    (0..c)
        .map(|j| {
            let idx = if c <= 1 { 0 } else { j * (n - 1) / (c - 1) };
            sorted[idx]
        })
        .collect()
}

/// Synthesis for [`fit_wavelet`]: piecewise-linear interpolation of the
/// knot values at sorted position `s`.
fn eval_wavelet(coeffs: &[f64], s: usize, n: usize) -> f64 {
    let c = coeffs.len();
    if c == 1 || n <= 1 {
        return coeffs[0];
    }
    let u = s as f64 / (n - 1) as f64 * (c - 1) as f64;
    let j = (u.floor() as usize).min(c - 2);
    let t = u - j as f64;
    coeffs[j] * (1.0 - t) + coeffs[j + 1] * t
}

#[inline]
fn zigzag_i64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag_i64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn bits_for(n: usize) -> u32 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1)
}

/// Clamped cubic B-spline basis at parameter `u ∈ [0,1]` with `c` control
/// points: returns `(first_control_index, 4 weights)` via Cox-de Boor.
fn bspline_basis(u: f64, c: usize) -> (usize, [f64; 4]) {
    let degree = 3usize;
    let nknots = c + degree + 1;
    // Clamped uniform knot vector: degree+1 zeros, interior uniform, degree+1 ones.
    let interior = nknots - 2 * (degree + 1);
    let knot = |i: usize| -> f64 {
        if i <= degree {
            0.0
        } else if i >= nknots - degree - 1 {
            1.0
        } else {
            (i - degree) as f64 / (interior + 1) as f64
        }
    };
    // Find the knot span.
    let u = u.clamp(0.0, 1.0);
    let mut span = degree;
    while span < c - 1 && u >= knot(span + 1) {
        span += 1;
    }
    // Cox-de Boor triangular scheme for the 4 nonzero basis functions.
    let mut left = [0.0f64; 4];
    let mut right = [0.0f64; 4];
    let mut nvals = [0.0f64; 4];
    nvals[0] = 1.0;
    for j in 1..=degree {
        left[j] = u - knot(span + 1 - j);
        right[j] = knot(span + j) - u;
        let mut saved = 0.0;
        for r in 0..j {
            let denom = right[r + 1] + left[j - r];
            let temp = if denom != 0.0 { nvals[r] / denom } else { 0.0 };
            nvals[r] = saved + right[r + 1] * temp;
            saved = left[j - r] * temp;
        }
        nvals[j] = saved;
    }
    (span - degree, nvals)
}

/// Least-squares fit of `c` B-spline coefficients to `data` sampled at
/// `u_i = i/(n-1)`: normal equations + Cholesky (c ≤ 255, dense is fine).
/// The basis rows come from the memoized cache; `ata` is the caller's
/// reusable `c × c` workspace and the solution lands in `coeffs`.
fn fit_bspline_cached(
    data: &[f64],
    c: usize,
    basis: &BasisCache,
    ata: &mut Vec<f64>,
    coeffs: &mut Vec<f64>,
) {
    debug_assert_eq!(basis.n, data.len());
    debug_assert_eq!(basis.c, c);
    ata.clear();
    ata.resize(c * c, 0.0);
    coeffs.clear();
    coeffs.resize(c, 0.0);
    for (i, &y) in data.iter().enumerate() {
        let (first, wts) = basis.at(i);
        for a in 0..4 {
            let ia = first + a;
            if ia >= c {
                continue;
            }
            coeffs[ia] += wts[a] * y;
            for b in 0..4 {
                let ib = first + b;
                if ib < c {
                    ata[ia * c + ib] += wts[a] * wts[b];
                }
            }
        }
    }
    // Tikhonov ridge keeps the system well-posed when some basis functions
    // see few samples.
    for i in 0..c {
        ata[i * c + i] += 1e-9 * (1.0 + ata[i * c + i]);
    }
    cholesky_solve(ata, coeffs, c);
}

/// Convenience wrapper over [`fit_bspline_cached`] with a fresh cache
/// (tests and one-off fits).
#[cfg(test)]
fn fit_bspline(data: &[f64], c: usize) -> Vec<f64> {
    let mut basis = BasisCache::default();
    basis.ensure(data.len(), c);
    let (mut ata, mut coeffs) = (Vec::new(), Vec::new());
    fit_bspline_cached(data, c, &basis, &mut ata, &mut coeffs);
    coeffs
}

/// Evaluate the fitted spline at sorted position `s` of `n` (test oracle
/// for the cached path).
#[cfg(test)]
fn eval_bspline(coeffs: &[f64], s: usize, n: usize) -> f64 {
    let u = if n <= 1 { 0.0 } else { s as f64 / (n - 1) as f64 };
    let (first, wts) = bspline_basis(u, coeffs.len());
    let mut v = 0.0;
    for a in 0..4 {
        if first + a < coeffs.len() {
            v += wts[a] * coeffs[first + a];
        }
    }
    v
}

/// In-place Cholesky solve of `A x = b` for symmetric positive-definite `A`
/// (`c × c`, row-major). Overwrites `b` with the solution.
fn cholesky_solve(a: &mut [f64], b: &mut [f64], c: usize) {
    // Decompose A = L Lᵀ (lower triangle stored in place).
    for i in 0..c {
        for j in 0..=i {
            let mut sum = a[i * c + j];
            for k in 0..j {
                sum -= a[i * c + k] * a[j * c + k];
            }
            if i == j {
                a[i * c + j] = sum.max(1e-300).sqrt();
            } else {
                a[i * c + j] = sum / a[j * c + j];
            }
        }
    }
    // Forward substitution L y = b.
    for i in 0..c {
        let mut sum = b[i];
        for k in 0..i {
            sum -= a[i * c + k] * b[k];
        }
        b[i] = sum / a[i * c + i];
    }
    // Back substitution Lᵀ x = y.
    for i in (0..c).rev() {
        let mut sum = b[i];
        for k in i + 1..c {
            sum -= a[k * c + i] * b[k];
        }
        b[i] = sum / a[i * c + i];
    }
}

impl Codec for Isabela {
    fn name(&self) -> String {
        format!("ISA-{:.1}", self.rel_err * 100.0)
    }

    fn properties(&self) -> CodecProperties {
        // Table 1 row "ISABELA": lossless N, special N, free Y, fixed
        // quality N, fixed CR N, 32-&64-bit Y.
        CodecProperties {
            lossless_mode: false,
            special_values: false,
            freely_available: true,
            fixed_quality: false,
            fixed_cr: false,
            bits_32_and_64: true,
        }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        let n_windows = data.len().div_ceil(WINDOW);
        // Every window ends byte-aligned, so all windows stream into one
        // contiguous buffer and the random-access offset table is read off
        // the writer's length — no per-window Vec, same bytes as the old
        // block-per-window assembly.
        let mut scratch = WindowScratch::default();
        let mut w = BitWriter::new();
        let body_base = 4 + 4 * n_windows;
        let mut offsets: Vec<u32> = Vec::with_capacity(n_windows);
        for window in data.chunks(WINDOW) {
            debug_assert_eq!(w.bit_len() % 8, 0);
            offsets.push((body_base + w.bit_len() / 8) as u32);
            self.compress_window(window, &mut w, &mut scratch);
        }
        let body = w.finish();
        let mut out =
            Vec::with_capacity(crate::LAYOUT_HEADER_LEN + body_base + body.len());
        crate::write_layout_header(&mut out, layout);
        // Window offsets are relative to the start of the post-header body.
        out.extend_from_slice(&(n_windows as u32).to_le_bytes());
        for off in &offsets {
            out.extend_from_slice(&off.to_le_bytes());
        }
        out.extend_from_slice(&body);
        out
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let body = crate::check_layout_header(bytes, layout)?;
        let n_total = layout.len();
        let n_windows = n_total.div_ceil(WINDOW);
        if body.len() < 4 + 4 * n_windows {
            return Err(CodecError::Corrupt("truncated window table"));
        }
        let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
        if count != n_windows {
            return Err(CodecError::LayoutMismatch);
        }
        // One basis cache serves every window of the field (they share
        // `(n, ncoeff)` except possibly the final partial window).
        let mut basis = BasisCache::default();
        let mut out = Vec::with_capacity(n_total);
        for widx in 0..n_windows {
            let off_pos = 4 + 4 * widx;
            let off = u32::from_le_bytes([
                body[off_pos],
                body[off_pos + 1],
                body[off_pos + 2],
                body[off_pos + 3],
            ]) as usize;
            if off > body.len() {
                return Err(CodecError::Corrupt("window offset out of range"));
            }
            let n = WINDOW.min(n_total - widx * WINDOW);
            let mut r = BitReader::new(&body[off..]);
            out.extend(self.decompress_window_inner(&mut r, n, &mut basis)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip;
    use crate::testdata::{noisy_field, smooth_field};

    #[test]
    fn error_bound_holds_on_smooth_data() {
        let (data, layout) = smooth_field(4000, 1);
        for codec in Isabela::paper_variants() {
            let (back, _) = roundtrip(&codec, &data, layout);
            for (&a, &b) in data.iter().zip(&back) {
                let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-30)).abs();
                assert!(
                    rel <= codec.rel_err() + 1e-9,
                    "{}: rel err {rel}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn error_bound_holds_on_noisy_lognormal_data() {
        let (data, layout) = noisy_field(3000);
        let codec = Isabela::new(0.005);
        let (back, _) = roundtrip(&codec, &data, layout);
        for (&a, &b) in data.iter().zip(&back) {
            let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-30)).abs();
            assert!(rel <= 0.005 + 1e-9, "rel err {rel}");
        }
    }

    #[test]
    fn index_floor_limits_compression() {
        // The 10-bit/point sort index means CR can never beat ~0.31 plus
        // coefficients; check we are in the paper's observed band.
        let (data, layout) = smooth_field(8192, 1);
        let codec = Isabela::new(0.01);
        let bytes = codec.compress(&data, layout);
        let cr = bytes.len() as f64 / (data.len() * 4) as f64;
        assert!(cr > 0.30, "CR {cr} beats the sort-index floor?!");
        assert!(cr < 0.65, "CR {cr} worse than the paper's band");
    }

    #[test]
    fn tighter_error_costs_more() {
        let (data, layout) = noisy_field(8192);
        let loose = Isabela::new(0.01).compress(&data, layout).len();
        let tight = Isabela::new(0.001).compress(&data, layout).len();
        assert!(tight >= loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn random_access_window_decode() {
        let (data, layout) = smooth_field(WINDOW * 3 + 100, 1);
        let codec = Isabela::new(0.005);
        let bytes = codec.compress(&data, layout);
        let full = codec.decompress(&bytes, layout).unwrap();
        for widx in 0..4 {
            let win = codec.decompress_window(&bytes, layout, widx).unwrap();
            let start = widx * WINDOW;
            let end = (start + WINDOW).min(data.len());
            assert_eq!(win, &full[start..end], "window {widx}");
        }
        assert!(codec.decompress_window(&bytes, layout, 4).is_err());
    }

    #[test]
    fn tiny_windows_stored_raw() {
        let data = vec![1.0f32, -2.0, 3.0];
        let layout = Layout::linear(3);
        let codec = Isabela::new(0.01);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert_eq!(back, data, "raw windows are exact");
    }

    #[test]
    fn constant_window() {
        let data = vec![5.0f32; 2000];
        let layout = Layout::linear(2000);
        let codec = Isabela::new(0.001);
        let (back, _) = roundtrip(&codec, &data, layout);
        for &v in &back {
            assert!((v - 5.0).abs() / 5.0 < 0.001 + 1e-9);
        }
    }

    #[test]
    fn sorted_input_is_ideal_case() {
        let data: Vec<f32> = (0..WINDOW).map(|i| i as f32).collect();
        let layout = Layout::linear(WINDOW);
        let codec = Isabela::new(0.01);
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            let rel = ((a - b) / a.abs().max(1.0)).abs();
            assert!(rel <= 0.01 + 1e-6);
        }
    }

    #[test]
    fn corrupt_stream_is_error() {
        let (data, layout) = smooth_field(2000, 1);
        let codec = Isabela::new(0.01);
        let bytes = codec.compress(&data, layout);
        assert!(codec.decompress(&bytes[..10], layout).is_err());
        let mut bad = bytes.clone();
        bad[2] ^= 0xFF; // corrupt window count
        assert!(codec.decompress(&bad, layout).is_err());
    }

    #[test]
    fn bspline_fit_reproduces_line() {
        let data: Vec<f64> = (0..100).map(|i| 3.0 + 0.5 * i as f64).collect();
        let coeffs = fit_bspline(&data, 10);
        for (i, &y) in data.iter().enumerate() {
            let f = eval_bspline(&coeffs, i, data.len());
            assert!((f - y).abs() < 1e-6, "at {i}: {f} vs {y}");
        }
    }

    #[test]
    fn bspline_basis_partition_of_unity() {
        for c in [4usize, 10, 30] {
            for &u in &[0.0, 0.1, 0.33, 0.5, 0.77, 0.999, 1.0] {
                let (_, w) = bspline_basis(u, c);
                let s: f64 = w.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "c={c} u={u}: {s}");
                assert!(w.iter().all(|&x| x >= -1e-12), "negative weight");
            }
        }
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        let mut b = vec![10.0, 9.0];
        cholesky_solve(&mut a, &mut b, 2);
        assert!((b[0] - 1.5).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wavelet_variant_honors_error_bound() {
        let (data, layout) = smooth_field(4000, 1);
        let codec = Isabela::new(0.005).with_fit(Fit::Wavelet);
        let (back, _) = roundtrip(&codec, &data, layout);
        for (&a, &b) in data.iter().zip(&back) {
            let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-30)).abs();
            assert!(rel <= 0.005 + 1e-9, "rel {rel}");
        }
    }

    #[test]
    fn wavelet_variant_on_noisy_data() {
        let (data, layout) = noisy_field(3000);
        let codec = Isabela::new(0.01).with_fit(Fit::Wavelet);
        let (back, n) = roundtrip(&codec, &data, layout);
        for (&a, &b) in data.iter().zip(&back) {
            let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-30)).abs();
            assert!(rel <= 0.01 + 1e-9, "rel {rel}");
        }
        assert!(n < data.len() * 4, "must still compress");
    }

    #[test]
    fn eval_wavelet_interpolates_exactly_at_knots() {
        // n−1 divisible by c−1 ⇒ knot positions land on exact samples.
        let sorted: Vec<f64> = (0..101).map(|i| (i as f64).powf(1.3)).collect();
        let coeffs = fit_wavelet(&sorted, 11);
        for j in 0..11 {
            let s = j * 10;
            let f = eval_wavelet(&coeffs, s, 101);
            assert!((f - sorted[s]).abs() < 1e-12, "knot {j}: {f} vs {}", sorted[s]);
        }
    }

    #[test]
    fn properties_match_table1() {
        let p = Isabela::new(0.01).properties();
        assert!(!p.lossless_mode);
        assert!(!p.special_values);
        assert!(p.freely_available);
        assert!(!p.fixed_quality);
        assert!(!p.fixed_cr);
        assert!(p.bits_32_and_64);
    }
}
