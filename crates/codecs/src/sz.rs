//! SZ-style error-bounded predictive compression.
//!
//! Follows the published SZ design (Di & Cappello 2016; Tao et al. 2017;
//! the "error bounded lossy compression" line of work the paper's
//! follow-ups converged on): predict each value from already-*decoded*
//! neighbours, quantize the prediction residual on a uniform lattice of
//! step `2e`, and entropy-code the quantization codes. Because the
//! encoder mirrors the decoder's reconstruction exactly, every decoded
//! value provably satisfies `|x' − x| ≤ e` — the bound is checked against
//! the final `f32` reconstruction at encode time and any value the
//! predictor cannot capture within the bound takes the escape path and is
//! stored bit-exactly.
//!
//! Two predictors compete per 256-element block, the same pairing SZ-2
//! uses:
//!
//! 1. the 2-D **Lorenzo** predictor over the (level × horizontal) layout,
//!    identical in shape to the fpzip predictor but running on
//!    reconstructed values;
//! 2. a per-block **linear regression** `x ≈ a + b·j` fitted to the
//!    block's original values (coefficients stored as two `f32`s), which
//!    wins on smooth ramps where Lorenzo's noise feedback loses.
//!
//! The winner is the block with the smaller coded size; one choice bit
//! per block is recorded. Codes, choice bits, regression coefficients,
//! and escape literals are serialized into one body that goes through
//! `cc_lossless::compress`, behind the standard 16-byte layout echo.
//!
//! The bound is either **absolute** (`|x' − x| ≤ e`) or **value-range
//! relative** (`|x' − x| ≤ r · (max − min)` over the encoded stream's
//! finite values — the classic SZ "REL" mode). Degenerate streams
//! (constant fields under a relative bound, empty fields, all-NaN
//! ranges) fall back to an exact mode that stores the raw bits through
//! the shuffled lossless path.

use crate::varint::{push_varint, read_varint, unzigzag, varint_len, zigzag};
use crate::{Codec, CodecError, CodecProperties, Layout};

/// The user-specified error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Pointwise absolute bound: `|x' − x| ≤ e`.
    Abs(f64),
    /// Value-range relative bound: `|x' − x| ≤ r · (max − min)` of the
    /// encoded stream's finite values.
    Rel(f64),
}

impl ErrorBound {
    /// Display suffix used in codec/variant names (`abs-1e-3`).
    pub fn label(&self) -> String {
        match self {
            ErrorBound::Abs(e) => format!("abs-{e:e}"),
            ErrorBound::Rel(r) => format!("rel-{r:e}"),
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            ErrorBound::Abs(_) => 0,
            ErrorBound::Rel(_) => 1,
        }
    }

    fn param(&self) -> f64 {
        match self {
            ErrorBound::Abs(e) => *e,
            ErrorBound::Rel(r) => *r,
        }
    }

    /// The effective absolute bound this bound implies for `data`, or
    /// `None` when a stream must use an exact fallback (no finite values,
    /// zero range under a relative bound). Shared by the SZ codec and the
    /// archive delta frames so both quantize on the identical lattice.
    pub fn effective(&self, data: &[f32]) -> Option<f64> {
        let e = match self {
            ErrorBound::Abs(e) => *e,
            ErrorBound::Rel(r) => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in data {
                    if v.is_finite() {
                        lo = lo.min(v as f64);
                        hi = hi.max(v as f64);
                    }
                }
                if hi <= lo {
                    return None; // constant or no finite values
                }
                r * (hi - lo)
            }
        };
        (e.is_finite() && e > 0.0).then_some(e)
    }
}

/// SZ-style codec with a fixed error bound.
#[derive(Debug, Clone, Copy)]
pub struct Sz {
    bound: ErrorBound,
}

/// Elements per predictor-choice block.
const BLOCK: usize = 256;

/// Largest admissible quantization-code magnitude; larger residuals take
/// the escape path. Keeps codes inside 32 bits and reconstruction
/// arithmetic far from `f64` precision loss.
const QMAX: i64 = 1 << 30;

/// Stream mode tags.
const MODE_QUANTIZED: u8 = 0;
const MODE_EXACT: u8 = 1;

impl Sz {
    /// Create an SZ codec; the bound parameter must be positive and
    /// finite.
    pub fn new(bound: ErrorBound) -> Self {
        let p = bound.param();
        assert!(
            p.is_finite() && p > 0.0,
            "SZ error bound must be positive and finite, got {p}"
        );
        Sz { bound }
    }

    /// Absolute-bound constructor.
    pub fn abs(e: f64) -> Self {
        Sz::new(ErrorBound::Abs(e))
    }

    /// Relative-bound constructor.
    pub fn rel(r: f64) -> Self {
        Sz::new(ErrorBound::Rel(r))
    }

    /// The configured bound.
    pub fn bound(&self) -> ErrorBound {
        self.bound
    }

    /// The effective absolute bound for `data`, or `None` when the
    /// stream must use the exact fallback (no finite values, zero range
    /// under a relative bound).
    fn effective_bound(&self, data: &[f32]) -> Option<f64> {
        self.bound.effective(data)
    }
}

/// 2-D Lorenzo prediction over decoded values: `left + above − above-left`
/// in the (level × horizontal) layout, degrading to the available
/// neighbours on the edges. `get` reads the reconstruction at an index.
#[inline]
fn lorenzo_pred(i: usize, npts: usize, get: &dyn Fn(usize) -> f32) -> f64 {
    let lev = i / npts;
    let p = i % npts;
    match (lev > 0, p > 0) {
        (true, true) => {
            get(i - 1) as f64 + get(i - npts) as f64 - get(i - npts - 1) as f64
        }
        (true, false) => get(i - npts) as f64,
        (false, true) => get(i - 1) as f64,
        (false, false) => 0.0,
    }
}

/// Least-squares fit `x ≈ a + b·j` over the block's original values,
/// returned as the `f32`-rounded coefficients the decoder will use.
/// Non-finite inputs or degenerate fits collapse to `(0, 0)` — the
/// block then escapes wherever the zero prediction misses the bound.
fn regression_fit(block: &[f32]) -> (f32, f32) {
    let m = block.len();
    if m == 0 {
        return (0.0, 0.0);
    }
    let mf = m as f64;
    let mean_t = (mf - 1.0) / 2.0;
    let mut mean_x = 0.0f64;
    for &x in block {
        mean_x += x as f64;
    }
    mean_x /= mf;
    let mut cov = 0.0f64;
    let mut var = 0.0f64;
    for (j, &x) in block.iter().enumerate() {
        let dt = j as f64 - mean_t;
        cov += dt * (x as f64 - mean_x);
        var += dt * dt;
    }
    let b = if var > 0.0 { cov / var } else { 0.0 };
    let a = mean_x - b * mean_t;
    if a.is_finite() && b.is_finite() {
        (a as f32, b as f32)
    } else {
        (0.0, 0.0)
    }
}

/// Which predictor a block uses.
#[derive(Clone, Copy, PartialEq)]
enum Predictor {
    Lorenzo,
    Regression { a: f32, b: f32 },
}

/// One block's tentative encoding: codes, escapes, reconstruction, and
/// the coded-size cost used to pick the winner.
struct BlockTrial {
    codes: Vec<u64>,
    escapes: Vec<u32>,
    recon: Vec<f32>,
    cost: usize,
}

/// Encode `block` (original values at `start..start+len`) under one
/// predictor against the current reconstruction `state`, without
/// committing. Within-block neighbours read the tentative
/// reconstruction.
fn try_block(
    data: &[f32],
    start: usize,
    len: usize,
    npts: usize,
    e: f64,
    pred: Predictor,
    state: &[f32],
) -> BlockTrial {
    let twoe = 2.0 * e;
    let mut codes = Vec::with_capacity(len);
    let mut escapes = Vec::new();
    let mut recon: Vec<f32> = Vec::with_capacity(len);
    let mut cost = if matches!(pred, Predictor::Regression { .. }) { 8 } else { 0 };
    for j in 0..len {
        let i = start + j;
        let x = data[i];
        let p = match pred {
            Predictor::Lorenzo => lorenzo_pred(i, npts, &|k| {
                if k >= start { recon[k - start] } else { state[k] }
            }),
            Predictor::Regression { a, b } => a as f64 + b as f64 * j as f64,
        };
        let q = ((x as f64 - p) / twoe).round();
        let mut coded = None;
        if q.is_finite() && q.abs() <= QMAX as f64 {
            let xr = (p + q * twoe) as f32;
            if xr.is_finite() && (xr as f64 - x as f64).abs() <= e {
                coded = Some((q as i64, xr));
            }
        }
        match coded {
            Some((q, xr)) => {
                let token = zigzag(q) + 1;
                cost += varint_len(token);
                codes.push(token);
                recon.push(xr);
            }
            None => {
                cost += 1 + 4; // escape token + literal
                codes.push(0);
                escapes.push(x.to_bits());
                recon.push(x);
            }
        }
    }
    BlockTrial { codes, escapes, recon, cost }
}

impl Codec for Sz {
    fn name(&self) -> String {
        format!("SZ-{}", self.bound.label())
    }

    fn properties(&self) -> CodecProperties {
        // Error-bounded ⇒ fixed quality, varying CR; no native special
        // handling (the guard supplies it) and no lossless mode.
        CodecProperties {
            lossless_mode: false,
            special_values: false,
            freely_available: true,
            fixed_quality: true,
            fixed_cr: false,
            bits_32_and_64: true,
        }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        let mut out = Vec::new();
        crate::write_layout_header(&mut out, layout);
        out.push(0); // mode, patched below
        out.push(self.bound.kind_byte());
        out.extend_from_slice(&self.bound.param().to_bits().to_le_bytes());

        let n = data.len();
        let e = match self.effective_bound(data) {
            Some(e) if n > 0 => e,
            _ => {
                // Exact fallback: raw bits through the shuffled path.
                out[crate::LAYOUT_HEADER_LEN] = MODE_EXACT;
                out.extend(cc_lossless::compress_f32_shuffled(data, cc_lossless::Level::Default));
                return out;
            }
        };
        out[crate::LAYOUT_HEADER_LEN] = MODE_QUANTIZED;
        out.extend_from_slice(&e.to_bits().to_le_bytes());

        let npts = layout.npts;
        let nblocks = n.div_ceil(BLOCK);
        let mut state: Vec<f32> = Vec::with_capacity(n);
        let mut choice = vec![0u8; nblocks.div_ceil(8)];
        let mut reg_coeffs: Vec<u8> = Vec::new();
        let mut codes: Vec<u8> = Vec::new();
        let mut escapes: Vec<u8> = Vec::new();
        let mut n_escapes = 0usize;

        for blk in 0..nblocks {
            let start = blk * BLOCK;
            let len = BLOCK.min(n - start);
            let (a, b) = regression_fit(&data[start..start + len]);
            let lorenzo =
                try_block(data, start, len, npts, e, Predictor::Lorenzo, &state);
            let regression = try_block(
                data, start, len, npts, e, Predictor::Regression { a, b }, &state,
            );
            // Ties favour Lorenzo (no coefficients to store).
            let (trial, is_reg) = if regression.cost < lorenzo.cost {
                (regression, true)
            } else {
                (lorenzo, false)
            };
            if is_reg {
                choice[blk / 8] |= 1 << (blk % 8);
                reg_coeffs.extend_from_slice(&a.to_bits().to_le_bytes());
                reg_coeffs.extend_from_slice(&b.to_bits().to_le_bytes());
            }
            for &t in &trial.codes {
                push_varint(&mut codes, t);
            }
            for &bits in &trial.escapes {
                escapes.extend_from_slice(&bits.to_le_bytes());
                n_escapes += 1;
            }
            state.extend_from_slice(&trial.recon);
        }

        let mut body = Vec::with_capacity(12 + choice.len() + reg_coeffs.len() + codes.len() + escapes.len());
        body.extend_from_slice(&(n_escapes as u32).to_le_bytes());
        body.extend_from_slice(&(codes.len() as u32).to_le_bytes());
        body.extend_from_slice(&((reg_coeffs.len() / 8) as u32).to_le_bytes());
        body.extend_from_slice(&choice);
        body.extend_from_slice(&reg_coeffs);
        body.extend_from_slice(&codes);
        body.extend_from_slice(&escapes);
        out.extend(cc_lossless::compress(&body, cc_lossless::Level::Default));
        out
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let bytes = crate::check_layout_header(bytes, layout)?;
        if bytes.len() < 10 {
            return Err(CodecError::Corrupt("truncated sz header"));
        }
        let mode = bytes[0];
        if bytes[1] != self.bound.kind_byte() {
            return Err(CodecError::Corrupt("sz bound kind mismatch"));
        }
        let param = f64::from_bits(u64::from_le_bytes(bytes[2..10].try_into().unwrap()));
        if param.to_bits() != self.bound.param().to_bits() {
            return Err(CodecError::Corrupt("sz bound parameter mismatch"));
        }
        let n = layout.len();
        match mode {
            MODE_EXACT => {
                let out = cc_lossless::decompress_f32_shuffled(&bytes[10..])?;
                if out.len() != n {
                    return Err(CodecError::LayoutMismatch);
                }
                Ok(out)
            }
            MODE_QUANTIZED => self.decode_quantized(&bytes[10..], layout),
            _ => Err(CodecError::Corrupt("unknown sz mode")),
        }
    }
}

impl Sz {
    fn decode_quantized(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        if bytes.len() < 8 {
            return Err(CodecError::Corrupt("truncated sz bound"));
        }
        let e = f64::from_bits(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
        if !(e.is_finite() && e > 0.0) {
            return Err(CodecError::Corrupt("sz effective bound out of range"));
        }
        let twoe = 2.0 * e;
        let n = layout.len();
        let npts = layout.npts;
        if n == 0 {
            return Err(CodecError::Corrupt("quantized sz stream for empty layout"));
        }

        let body = cc_lossless::decompress(&bytes[8..])?;
        if body.len() < 12 {
            return Err(CodecError::Corrupt("truncated sz body header"));
        }
        let rd32 = |at: usize| u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize;
        let n_escapes = rd32(0);
        let code_len = rd32(4);
        let n_reg = rd32(8);
        let nblocks = n.div_ceil(BLOCK);
        let bitmap_len = nblocks.div_ceil(8);
        if n_escapes > n || n_reg > nblocks {
            return Err(CodecError::Corrupt("sz section counts out of range"));
        }
        let expect = 12usize
            .checked_add(bitmap_len)
            .and_then(|v| v.checked_add(n_reg.checked_mul(8)?))
            .and_then(|v| v.checked_add(code_len))
            .and_then(|v| v.checked_add(n_escapes.checked_mul(4)?))
            .ok_or(CodecError::Corrupt("sz section lengths overflow"))?;
        if expect != body.len() {
            return Err(CodecError::Corrupt("sz section lengths disagree with body"));
        }
        let bitmap = &body[12..12 + bitmap_len];
        let set_bits: usize =
            bitmap.iter().map(|b| b.count_ones() as usize).sum();
        if set_bits != n_reg {
            return Err(CodecError::Corrupt("sz regression count disagrees with bitmap"));
        }
        let coeffs = &body[12 + bitmap_len..12 + bitmap_len + n_reg * 8];
        let codes = &body[12 + bitmap_len + n_reg * 8..12 + bitmap_len + n_reg * 8 + code_len];
        let escapes = &body[12 + bitmap_len + n_reg * 8 + code_len..];

        let mut out: Vec<f32> = Vec::with_capacity(n);
        let mut pos = 0usize;
        let mut esc = 0usize;
        let mut reg_idx = 0usize;
        let mut pred = Predictor::Lorenzo;
        for i in 0..n {
            let j = i % BLOCK;
            if j == 0 {
                let blk = i / BLOCK;
                pred = if bitmap[blk / 8] >> (blk % 8) & 1 == 1 {
                    let at = reg_idx * 8;
                    reg_idx += 1;
                    let a = f32::from_bits(u32::from_le_bytes(coeffs[at..at + 4].try_into().unwrap()));
                    let b = f32::from_bits(u32::from_le_bytes(coeffs[at + 4..at + 8].try_into().unwrap()));
                    Predictor::Regression { a, b }
                } else {
                    Predictor::Lorenzo
                };
            }
            let token = read_varint(codes, &mut pos)?;
            if token == 0 {
                if esc >= n_escapes {
                    return Err(CodecError::Corrupt("sz escape literals exhausted"));
                }
                let at = esc * 4;
                out.push(f32::from_bits(u32::from_le_bytes(
                    escapes[at..at + 4].try_into().unwrap(),
                )));
                esc += 1;
                continue;
            }
            let q = unzigzag(token - 1);
            if q.abs() > QMAX {
                return Err(CodecError::Corrupt("sz code out of range"));
            }
            let p = match pred {
                Predictor::Lorenzo => lorenzo_pred(i, npts, &|k| out[k]),
                Predictor::Regression { a, b } => a as f64 + b as f64 * j as f64,
            };
            let xr = (p + q as f64 * twoe) as f32;
            if !xr.is_finite() {
                return Err(CodecError::Corrupt("sz reconstruction overflow"));
            }
            out.push(xr);
        }
        // Canonical streams consume their sections exactly.
        if pos != codes.len() || esc != n_escapes {
            return Err(CodecError::Corrupt("sz trailing section bytes"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip;
    use crate::testdata::{noisy_field, smooth_field};

    fn assert_bound(data: &[f32], back: &[f32], e: f64, tag: &str) {
        for (i, (&a, &b)) in data.iter().zip(back).enumerate() {
            if a.is_finite() {
                let err = (b as f64 - a as f64).abs();
                assert!(err <= e, "{tag}: |{b} - {a}| = {err} > {e} at {i}");
            } else {
                assert_eq!(b.to_bits(), a.to_bits(), "{tag}: non-finite at {i}");
            }
        }
    }

    #[test]
    fn abs_bound_holds_on_smooth_field() {
        let (data, layout) = smooth_field(3000, 2);
        for e in [1.0, 0.1, 1e-3, 1e-6] {
            let codec = Sz::abs(e);
            let (back, n) = roundtrip(&codec, &data, layout);
            assert_eq!(back.len(), data.len());
            assert!(n > 0);
            assert_bound(&data, &back, e, "abs");
        }
    }

    #[test]
    fn abs_bound_holds_on_noisy_field() {
        let (data, layout) = noisy_field(5000);
        let codec = Sz::abs(1e-2);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert_bound(&data, &back, 1e-2, "noisy");
    }

    #[test]
    fn rel_bound_scales_with_range() {
        let (data, layout) = smooth_field(4000, 1);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &data {
            lo = lo.min(v as f64);
            hi = hi.max(v as f64);
        }
        let r = 1e-4;
        let codec = Sz::rel(r);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert_bound(&data, &back, r * (hi - lo), "rel");
    }

    #[test]
    fn constant_field_is_exact_under_rel_bound() {
        let layout = Layout::linear(2000);
        let data = vec![42.5f32; 2000];
        let codec = Sz::rel(1e-3);
        let (back, n) = roundtrip(&codec, &data, layout);
        assert_eq!(back, data);
        assert!(n < 400, "constant field must compress tightly: {n}");
    }

    #[test]
    fn non_finite_values_survive_exactly() {
        let (mut data, layout) = smooth_field(1024, 1);
        data[10] = f32::NAN;
        data[100] = f32::INFINITY;
        data[500] = f32::NEG_INFINITY;
        let codec = Sz::abs(1e-3);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert!(back[10].is_nan());
        assert_eq!(back[100], f32::INFINITY);
        assert_eq!(back[500], f32::NEG_INFINITY);
        assert_bound(&data, &back, 1e-3, "specials");
    }

    #[test]
    fn tighter_bound_costs_more_bytes() {
        let (data, layout) = smooth_field(8000, 2);
        let loose = Sz::abs(1.0).compress(&data, layout).len();
        let tight = Sz::abs(1e-5).compress(&data, layout).len();
        assert!(loose < tight, "loose {loose} vs tight {tight}");
        assert!(loose < data.len() * 4 / 4, "loose bound must compress well: {loose}");
    }

    #[test]
    fn empty_and_single_value_fields() {
        let codec = Sz::abs(0.5);
        let empty = codec.compress(&[], Layout::linear(0));
        assert!(codec.decompress(&empty, Layout::linear(0)).unwrap().is_empty());
        let one = Layout::linear(1);
        let (back, _) = roundtrip(&codec, &[3.25f32], one);
        assert!((back[0] - 3.25).abs() <= 0.5);
    }

    #[test]
    fn subnormals_and_negative_zero_respect_bound() {
        let layout = Layout::linear(6);
        let data = vec![1e-42f32, -1e-42, -0.0, 0.0, f32::MIN_POSITIVE, -f32::MIN_POSITIVE];
        let codec = Sz::abs(1e-6);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert_bound(&data, &back, 1e-6, "subnormal");
    }

    #[test]
    fn reconstruction_is_idempotent() {
        // Re-encoding the reconstruction must also satisfy the bound and
        // produce a decodable stream (values near the lattice).
        let (data, layout) = smooth_field(2000, 1);
        let codec = Sz::abs(1e-2);
        let (once, _) = roundtrip(&codec, &data, layout);
        let (twice, _) = roundtrip(&codec, &once, layout);
        assert_bound(&once, &twice, 1e-2, "idempotent");
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let (data, layout) = smooth_field(1500, 2);
        let codec = Sz::abs(1e-3);
        let good = codec.compress(&data, layout);
        let mut truncated = good.clone();
        truncated.truncate(good.len() / 2);
        assert!(codec.decompress(&truncated, layout).is_err());
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let _ = codec.decompress(&flipped, layout); // must not panic
        assert!(codec.decompress(&[], layout).is_err());
    }

    #[test]
    fn decoder_rejects_wrong_bound_config() {
        let (data, layout) = smooth_field(500, 1);
        let stream = Sz::abs(1e-3).compress(&data, layout);
        assert!(Sz::abs(1e-4).decompress(&stream, layout).is_err());
        assert!(Sz::rel(1e-3).decompress(&stream, layout).is_err());
    }

    #[test]
    fn regression_blocks_win_on_linear_ramps() {
        // A pure ramp with per-block slope changes: regression predicts
        // it nearly exactly, so at least one block must choose it and the
        // stream stays tiny.
        let n = 4096;
        let layout = Layout::linear(n);
        let data: Vec<f32> = (0..n).map(|i| 5.0 + 0.25 * i as f32).collect();
        let codec = Sz::abs(1e-3);
        let bytes = codec.compress(&data, layout);
        assert!(bytes.len() < n, "ramp must compress far below 1 byte/value: {}", bytes.len());
        let back = codec.decompress(&bytes, layout).unwrap();
        assert_bound(&data, &back, 1e-3, "ramp");
    }

    #[test]
    fn wide_magnitude_field_respects_abs_bound() {
        let layout = Layout::linear(4000);
        let data: Vec<f32> = (0..4000)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * 10f32.powf((i % 70) as f32 - 35.0)
            })
            .collect();
        let codec = Sz::abs(1e-4);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert_bound(&data, &back, 1e-4, "wide");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_bound_rejected() {
        Sz::abs(0.0);
    }

    #[test]
    fn properties_fixed_quality() {
        let p = Sz::abs(1e-3).properties();
        assert!(p.fixed_quality);
        assert!(!p.fixed_cr);
        assert!(!p.lossless_mode);
    }
}
