//! fpzip-style predictive floating-point compression.
//!
//! Follows the published fpzip design (Lindstrom & Isenburg, 2006):
//!
//! 1. map each float to an order-preserving unsigned integer (sign bit
//!    flipped for non-negative values, all bits inverted for negatives);
//! 2. in lossy mode, truncate the low `32 − p` bits, keeping `p` bits of
//!    precision — `p` must be a multiple of 8 (8/16/24/32; 32 is lossless
//!    for single-precision data), exactly the restriction the paper calls
//!    fpzip's "biggest drawback";
//! 3. predict each value with the 2-D Lorenzo predictor over the
//!    (level × horizontal) layout and entropy-code the residuals with
//!    adaptive Golomb-Rice codes.
//!
//! Truncating the *integer mapping* bounds the error at `< 2^(32−p)` ulps
//! of the value's exponent, i.e. a bounded **relative** error — the
//! property the paper contrasts with APAX's bounded absolute error.

use crate::{Codec, CodecError, CodecProperties, Layout};
use cc_lossless::bitio::{BitReader, BitWriter};

/// Residual entropy coder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entropy {
    /// Static Golomb-Rice codes with per-block parameters (fast).
    Rice,
    /// Adaptive binary range coding of residual bit-lengths (closer to the
    /// published fpzip's entropy stage; better ratio, slower).
    Range,
}

/// fpzip with `p` bits of retained precision (8, 16, 24, or 32).
#[derive(Debug, Clone, Copy)]
pub struct Fpzip {
    precision: u8,
    entropy: Entropy,
}

impl Fpzip {
    /// Create an fpzip codec with `precision ∈ {8, 16, 24, 32}`.
    pub fn new(precision: u8) -> Self {
        assert!(
            matches!(precision, 8 | 16 | 24 | 32),
            "fpzip precision must be a multiple of 8 in 8..=32, got {precision}"
        );
        Fpzip { precision, entropy: Entropy::Rice }
    }

    /// The lossless configuration (fpzip-32 for single-precision data).
    pub fn lossless() -> Self {
        Fpzip::new(32)
    }

    /// Select the residual entropy coder (default [`Entropy::Rice`]).
    pub fn with_entropy(mut self, entropy: Entropy) -> Self {
        self.entropy = entropy;
        self
    }

    /// The entropy coder in use.
    pub fn entropy(&self) -> Entropy {
        self.entropy
    }

    fn dropped_bits(&self) -> u32 {
        32 - self.precision as u32
    }
}

/// Order-preserving map from f32 bits to u32: non-negative floats map to
/// `bits | 0x8000_0000`, negatives to `!bits`. Monotone in the float value.
#[inline]
fn forward_map(v: f32) -> u32 {
    let bits = v.to_bits();
    if bits & 0x8000_0000 == 0 {
        bits | 0x8000_0000
    } else {
        !bits
    }
}

/// Inverse of [`forward_map`].
#[inline]
fn inverse_map(m: u32) -> f32 {
    let bits = if m & 0x8000_0000 != 0 { m & 0x7FFF_FFFF } else { !m };
    f32::from_bits(bits)
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Residuals are Rice-coded in blocks with a per-block parameter chosen
/// from the mean residual magnitude.
const RICE_BLOCK: usize = 512;

fn rice_k_for(values: &[u64]) -> u32 {
    let mean =
        values.iter().map(|&v| v as u128).sum::<u128>() / values.len().max(1) as u128;
    // Optimal k for geometric sources ≈ log2(mean).
    let mut k = 0u32;
    while (1u128 << (k + 1)) <= mean + 1 && k < 40 {
        k += 1;
    }
    k
}

impl Codec for Fpzip {
    fn name(&self) -> String {
        format!("fpzip-{}", self.precision)
    }

    fn properties(&self) -> CodecProperties {
        // Table 1 row "fpzip": lossless Y, special N, free Y, fixed quality
        // N, fixed CR N, 32-&64-bit Y.
        CodecProperties {
            lossless_mode: true,
            special_values: false,
            freely_available: true,
            fixed_quality: false,
            fixed_cr: false,
            bits_32_and_64: true,
        }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        let drop = self.dropped_bits();
        let mask = if drop == 0 { u32::MAX } else { u32::MAX << drop };
        let npts = layout.npts;

        // Truncated monotone integers (the values actually encoded).
        let ints: Vec<u32> = data.iter().map(|&v| forward_map(v) & mask).collect();

        // Lorenzo prediction over (level, horizontal-index): for interior
        // points pred = left + above − above-left, where "above" is the
        // same horizontal point on the previous level.
        let mut residuals: Vec<u64> = Vec::with_capacity(ints.len());
        for (i, &cur) in ints.iter().enumerate() {
            let lev = i / npts;
            let p = i % npts;
            let pred: i64 = match (lev > 0, p > 0) {
                (true, true) => {
                    ints[i - 1] as i64 + ints[i - npts] as i64 - ints[i - npts - 1] as i64
                }
                (true, false) => ints[i - npts] as i64,
                (false, true) => ints[i - 1] as i64,
                (false, false) => 0,
            };
            let r = cur as i64 - pred;
            // Residuals inherit the 2^drop divisibility of the inputs —
            // shift them out before coding.
            residuals.push(zigzag(r >> drop));
        }

        let mut out = Vec::new();
        crate::write_layout_header(&mut out, layout);
        match self.entropy {
            Entropy::Rice => {
                let mut w = BitWriter::new();
                w.write_bits(self.precision as u64, 8);
                w.write_bits(0, 8); // entropy tag
                for block in residuals.chunks(RICE_BLOCK) {
                    let k = rice_k_for(block);
                    w.write_bits(k as u64, 6);
                    for &r in block {
                        w.write_rice(r, k);
                    }
                }
                out.extend(w.finish());
                out
            }
            Entropy::Range => {
                // Adaptive coding of (bit-length, low bits): the length
                // tree learns the residual distribution; the low bits are
                // near-uniform and go in directly.
                out.extend([self.precision, 1u8]);
                let mut enc = cc_lossless::range::RangeEncoder::new();
                let mut len_tree = cc_lossless::range::BitTree::new(6);
                for &r in &residuals {
                    let nbits = 64 - r.leading_zeros();
                    len_tree.encode(&mut enc, nbits);
                    if nbits > 1 {
                        // MSB is implied by the length.
                        enc.encode_direct(r & ((1u64 << (nbits - 1)) - 1), nbits - 1);
                    }
                }
                out.extend(enc.finish());
                out
            }
        }
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let bytes = crate::check_layout_header(bytes, layout)?;
        if bytes.len() < 2 {
            return Err(CodecError::Corrupt("truncated fpzip header"));
        }
        let precision = bytes[0];
        if precision != self.precision {
            return Err(CodecError::Corrupt("precision header mismatch"));
        }
        let entropy_tag = bytes[1];
        let drop = self.dropped_bits();
        let n = layout.len();
        let npts = layout.npts;
        let mut ints = vec![0u32; n];

        // Reconstruct from a residual source shared by both entropy paths.
        let reconstruct = |i: usize, zz: u64, ints: &mut [u32]| -> Result<(), CodecError> {
            // Honest residuals fit 35 bits zigzagged (difference of u32s
            // against a 3-term Lorenzo prediction); anything bigger is
            // corrupt and would overflow the shift below.
            if zz > 1u64 << 36 {
                return Err(CodecError::Corrupt("residual out of range"));
            }
            let res = unzigzag(zz) << drop;
            let lev = i / npts;
            let p = i % npts;
            let pred: i64 = match (lev > 0, p > 0) {
                (true, true) => {
                    ints[i - 1] as i64 + ints[i - npts] as i64 - ints[i - npts - 1] as i64
                }
                (true, false) => ints[i - npts] as i64,
                (false, true) => ints[i - 1] as i64,
                (false, false) => 0,
            };
            let v = pred + res;
            if !(0..=u32::MAX as i64).contains(&v) {
                return Err(CodecError::Corrupt("reconstructed int out of range"));
            }
            ints[i] = v as u32;
            Ok(())
        };

        match entropy_tag {
            0 => {
                let mut r = BitReader::new(bytes);
                r.read_bits(16)?; // header
                let mut i = 0usize;
                while i < n {
                    let block_len = RICE_BLOCK.min(n - i);
                    let k = r.read_bits(6)? as u32;
                    if k > 40 {
                        return Err(CodecError::Corrupt("bad rice parameter"));
                    }
                    for _ in 0..block_len {
                        let zz = r.read_rice(k)?;
                        reconstruct(i, zz, &mut ints)?;
                        i += 1;
                    }
                }
            }
            1 => {
                let mut dec = cc_lossless::range::RangeDecoder::new(&bytes[2..])?;
                let mut len_tree = cc_lossless::range::BitTree::new(6);
                for i in 0..n {
                    let nbits = len_tree.decode(&mut dec)?;
                    if nbits > 40 {
                        return Err(CodecError::Corrupt("bad residual length"));
                    }
                    let zz = match nbits {
                        0 => 0u64,
                        1 => 1u64,
                        _ => (1u64 << (nbits - 1)) | dec.decode_direct(nbits - 1)?,
                    };
                    reconstruct(i, zz, &mut ints)?;
                }
            }
            _ => return Err(CodecError::Corrupt("unknown fpzip entropy tag")),
        }
        Ok(ints.into_iter().map(inverse_map).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{noisy_field, smooth_field};
    use crate::roundtrip;

    #[test]
    fn monotone_map_roundtrip_and_order() {
        let vals = [
            -1.0e30f32, -5.5, -1e-20, -0.0, 0.0, 1e-20, 0.5, 1.0, 2.0, 3.4e38,
        ];
        let mut prev = None;
        for &v in &vals {
            assert_eq!(inverse_map(forward_map(v)).to_bits(), v.to_bits());
            let m = forward_map(v);
            if let Some(p) = prev {
                assert!(m >= p, "map must be monotone at {v}");
            }
            prev = Some(m);
        }
    }

    #[test]
    fn lossless_mode_is_bit_exact() {
        let (data, layout) = smooth_field(2000, 3);
        let codec = Fpzip::lossless();
        let (back, n) = roundtrip(&codec, &data, layout);
        assert_eq!(back, data);
        assert!(n < data.len() * 4, "smooth data should compress: {n}");
    }

    #[test]
    fn lossless_on_noisy_data() {
        let (data, layout) = noisy_field(5000);
        let (back, _) = roundtrip(&Fpzip::lossless(), &data, layout);
        assert_eq!(back, data);
    }

    #[test]
    fn truncation_bounds_relative_error() {
        let (data, layout) = smooth_field(3000, 2);
        for precision in [16u8, 24] {
            let codec = Fpzip::new(precision);
            let (back, _) = roundtrip(&codec, &data, layout);
            let drop = 32 - precision as u32;
            for (&a, &b) in data.iter().zip(&back) {
                // Error below 2^drop ulps of the original's exponent:
                // relative error < 2^(drop − 23).
                let rel_bound = 2f64.powi(drop as i32 - 23);
                let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-30)).abs();
                assert!(
                    rel <= rel_bound,
                    "p={precision}: {a} -> {b}, rel {rel} > {rel_bound}"
                );
            }
        }
    }

    #[test]
    fn lower_precision_compresses_more() {
        let (data, layout) = smooth_field(8000, 2);
        let n16 = Fpzip::new(16).compress(&data, layout).len();
        let n24 = Fpzip::new(24).compress(&data, layout).len();
        let n32 = Fpzip::new(32).compress(&data, layout).len();
        assert!(n16 < n24, "fpzip-16 {n16} vs fpzip-24 {n24}");
        assert!(n24 < n32, "fpzip-24 {n24} vs fpzip-32 {n32}");
    }

    #[test]
    fn truncated_reconstruction_is_idempotent() {
        // Compressing the reconstruction again must be lossless (values
        // already on the truncation lattice).
        let (data, layout) = smooth_field(1000, 1);
        let codec = Fpzip::new(16);
        let (once, _) = roundtrip(&codec, &data, layout);
        let (twice, _) = roundtrip(&codec, &once, layout);
        assert_eq!(once, twice);
    }

    #[test]
    fn empty_field() {
        let layout = Layout::linear(0);
        let codec = Fpzip::lossless();
        let bytes = codec.compress(&[], layout);
        assert!(codec.decompress(&bytes, layout).unwrap().is_empty());
    }

    #[test]
    fn single_value() {
        let layout = Layout::linear(1);
        let codec = Fpzip::lossless();
        let (back, _) = roundtrip(&codec, &[42.5], layout);
        assert_eq!(back, vec![42.5]);
    }

    #[test]
    fn negative_and_mixed_sign_data() {
        let data: Vec<f32> = (0..4000).map(|i| ((i as f32) * 0.01).sin() * 25.0 - 5.0).collect();
        let layout = Layout::linear(4000);
        let (back, _) = roundtrip(&Fpzip::lossless(), &data, layout);
        assert_eq!(back, data);
    }

    #[test]
    fn corrupt_stream_is_error_not_panic() {
        let (data, layout) = smooth_field(500, 1);
        let codec = Fpzip::new(16);
        let mut bytes = codec.compress(&data, layout);
        bytes.truncate(bytes.len() / 2);
        assert!(codec.decompress(&bytes, layout).is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn invalid_precision_rejected() {
        Fpzip::new(20);
    }

    #[test]
    fn range_entropy_is_lossless_too() {
        let (data, layout) = smooth_field(3000, 2);
        let codec = Fpzip::lossless().with_entropy(Entropy::Range);
        let (back, _) = roundtrip(&codec, &data, layout);
        assert_eq!(back, data);
    }

    #[test]
    fn range_entropy_beats_or_matches_rice() {
        let (data, layout) = smooth_field(8000, 2);
        for bits in [16u8, 24, 32] {
            let rice = Fpzip::new(bits).compress(&data, layout).len();
            let range = Fpzip::new(bits).with_entropy(Entropy::Range).compress(&data, layout).len();
            // The adaptive coder should be at least competitive (within 2%).
            assert!(
                range as f64 <= rice as f64 * 1.02,
                "bits={bits}: range {range} vs rice {rice}"
            );
        }
    }

    #[test]
    fn streams_are_self_describing_across_entropy_modes() {
        // A Rice-mode decoder instance can decode a Range-mode stream of
        // the same precision: the tag is in the header.
        let (data, layout) = smooth_field(1000, 1);
        let bytes = Fpzip::new(24).with_entropy(Entropy::Range).compress(&data, layout);
        let back = Fpzip::new(24).decompress(&bytes, layout).unwrap();
        assert_eq!(back.len(), data.len());
        let bytes2 = Fpzip::new(24).compress(&data, layout);
        assert_eq!(
            Fpzip::new(24).with_entropy(Entropy::Range).decompress(&bytes2, layout).unwrap(),
            back
        );
    }

    #[test]
    fn properties_match_table1() {
        let p = Fpzip::lossless().properties();
        assert!(p.lossless_mode);
        assert!(!p.special_values);
        assert!(p.freely_available);
        assert!(!p.fixed_quality);
        assert!(!p.fixed_cr);
        assert!(p.bits_32_and_64);
    }
}
