//! APAX-style adaptive block-floating-point compression.
//!
//! Reimplements the observable behaviour of Samplify's APAX encoder as
//! described in the paper and its references (Hübbe et al. ISC'13, Laney
//! et al. SC'13, and US patent 7,009,533): the signal is cut into blocks,
//! an *adaptive pre-filter*
//! chooses a derivative order (0, 1, or 2) per block according to the
//! block's dominant frequency content, samples are represented in
//! block-floating-point form (shared exponent + mantissas), and mantissas
//! are packed with either
//!
//! * **fixed-rate** operation — an exact bit budget per block, so the
//!   overall compression ratio is exactly `1/rate` ("the only method that
//!   allows for the specification of fixed compression rates", Section
//!   3.2.4), quality varying; or
//! * **fixed-quality** operation — a per-block quantization chosen to meet
//!   an absolute error target, rate varying.
//!
//! Quantization bounds the **absolute** error (the paper's fpzip/APAX
//! contrast). [`Profiler`] reproduces the APAX profiler tool: it sweeps
//! encoding rates and recommends the highest rate whose reconstruction
//! keeps the Pearson correlation above 0.99999.

use crate::{Codec, CodecError, CodecProperties, Layout};
use cc_lossless::bitio::{BitReader, BitWriter};

/// Samples per block.
pub const BLOCK: usize = 256;

/// Mantissa bits used for the block-floating-point representation before
/// rate reduction (f32 has 24 significant bits; +2 headroom for the
/// second derivative).
const BFP_BITS: u32 = 26;

/// Operating mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Exact compression rate (e.g. 2.0, 4.0, 5.0): output bits per sample
    /// = 32/rate, enforced per block.
    FixedRate(f64),
    /// Absolute error target in units of the data: quantization step is
    /// chosen per block so `|x − x̃| ≤ target`.
    FixedQuality(f64),
    /// Lossless (rate 1): full-precision mantissas.
    Lossless,
}

/// The APAX-style codec.
#[derive(Debug, Clone, Copy)]
pub struct Apax {
    mode: Mode,
}

impl Apax {
    /// Fixed-rate encoder (`rate > 1`), e.g. `Apax::fixed_rate(4.0)` for
    /// the paper's APAX-4.
    pub fn fixed_rate(rate: f64) -> Self {
        assert!(rate > 1.0 && rate <= 32.0, "rate must be in (1, 32]");
        Apax { mode: Mode::FixedRate(rate) }
    }

    /// Fixed-quality encoder with an absolute error target.
    pub fn fixed_quality(max_abs_err: f64) -> Self {
        assert!(max_abs_err > 0.0, "error target must be positive");
        Apax { mode: Mode::FixedQuality(max_abs_err) }
    }

    /// Lossless mode (32-bit data only, as Table 1 footnotes).
    pub fn lossless() -> Self {
        Apax { mode: Mode::Lossless }
    }

    /// The mode this encoder runs in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The paper's fixed rates: APAX-2, APAX-4, APAX-5.
    pub fn paper_variants() -> [Apax; 3] {
        [Apax::fixed_rate(2.0), Apax::fixed_rate(4.0), Apax::fixed_rate(5.0)]
    }
}

/// Choose the derivative order whose differenced signal has the smallest
/// mean magnitude — APAX's adaptive pre-filter ("center frequency"
/// detection): smooth low-frequency blocks benefit from differencing,
/// noisy blocks do not.
fn choose_derivative(q: &[i64]) -> u32 {
    let sum_abs = |v: &[i64]| v.iter().map(|&x| x.unsigned_abs() as u128).sum::<u128>();
    let d0 = sum_abs(q);
    let d1v: Vec<i64> = q.windows(2).map(|w| w[1] - w[0]).collect();
    let d1 = sum_abs(&d1v);
    let d2v: Vec<i64> = d1v.windows(2).map(|w| w[1] - w[0]).collect();
    let d2 = sum_abs(&d2v);
    if d0 <= d1 && d0 <= d2 {
        0
    } else if d1 <= d2 {
        1
    } else {
        2
    }
}

// Differencing and its inverse wrap: corrupt streams can decode mantissas
// near the i64 extremes, and wrapping keeps the pair exactly inverse while
// never trapping on overflow.
fn apply_derivative(q: &mut [i64], order: u32) {
    for _ in 0..order {
        for i in (1..q.len()).rev() {
            q[i] = q[i].wrapping_sub(q[i - 1]);
        }
    }
}

fn integrate(q: &mut [i64], order: u32) {
    for _ in 0..order {
        for i in 1..q.len() {
            q[i] = q[i].wrapping_add(q[i - 1]);
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bits needed for the largest zigzagged magnitude in `q`.
fn bits_needed(q: &[i64]) -> u32 {
    let max = q.iter().map(|&v| zigzag(v)).max().unwrap_or(0);
    64 - max.leading_zeros()
}

/// Rice parameter minimizing the exact coded size: start from the
/// log2(mean) estimate and descend the (convex) size curve.
fn rice_k_for(zz: &[u64]) -> u32 {
    let mean = zz.iter().map(|&v| v as u128).sum::<u128>() / zz.len().max(1) as u128;
    let mut k = 0u32;
    while (1u128 << (k + 1)) <= mean + 1 && k < 40 {
        k += 1;
    }
    let mut best = (rice_size(zz, k), k);
    for cand in k.saturating_sub(2)..=(k + 2).min(40) {
        let size = rice_size(zz, cand);
        if size < best.0 {
            best = (size, cand);
        }
    }
    best.1
}

/// Split a residual stream into (up to) four equal quarters, each of which
/// carries its own Rice parameter.
fn quarters(zz: &[u64]) -> impl Iterator<Item = &[u64]> {
    let chunk = zz.len().div_ceil(4).max(1);
    zz.chunks(chunk)
}

/// Exact bit count `write_rice` will produce for `zz` at parameter `k`
/// (including the 48-one escape used for huge quotients).
fn rice_size(zz: &[u64], k: u32) -> u64 {
    let mut bits = 0u64;
    for &v in zz {
        let q = v >> k;
        if q < 48 {
            bits += q + 1 + k as u64;
        } else {
            bits += 48 + 64;
        }
    }
    bits
}

/// Block header: exp(16) + order(2) + shift s(6) + width W(6) bits.
const HEADER_BITS: u64 = 30;

/// Fixed-rate bit budget for a block of `n` samples. The floor covers the
/// worst-case framing (header + three extra Rice parameters + two verbatim
/// warm-up samples + one bit per sample) so tiny trailing blocks stay
/// representable; it only lifts the budget for blocks far smaller than
/// [`BLOCK`].
fn block_budget_bits(n: usize, rate: f64) -> u64 {
    (((n as f64) * 32.0 / rate).floor() as u64).max(HEADER_BITS + 18 + 2 * 28 + n as u64)
}

impl Apax {
    /// Quantize mantissas by `s` bits (round-to-nearest, in the original
    /// domain so the error is bounded per sample with no integration
    /// amplification), then apply the derivative pre-filter losslessly.
    fn quantize_and_filter(q: &[i64], s: u32, order: u32) -> Vec<i64> {
        let mut out: Vec<i64> = q.iter().map(|&v| round_shift(v, s)).collect();
        apply_derivative(&mut out, order);
        out
    }

    fn compress_block(&self, block: &[f32], w: &mut BitWriter) {
        let n = block.len();

        // Block floating point: shared exponent from the block's max
        // magnitude; mantissas are signed integers of BFP_BITS precision.
        let max_abs = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let exp = if max_abs == 0.0 { -126 } else { max_abs.log2().floor() as i32 };
        let shift = BFP_BITS as i32 - 2 - exp;
        let scale = 2f64.powi(shift);
        let q: Vec<i64> = block.iter().map(|&v| (v as f64 * scale).round() as i64).collect();

        // Adaptive derivative pre-filter (chosen on unquantized mantissas).
        let order = (choose_derivative(&q) as usize).min(n);
        // The first `order` filtered samples are derivative warm-ups that
        // still carry the block's full (DC) magnitude; coding them verbatim
        // keeps the quantization shift `s` from being forced up by them.
        const WARMUP_BITS: u64 = 28; // zigzagged 26-bit BFP mantissas

        // Choose the quantization shift `s`.
        let (s, filtered) = match self.mode {
            Mode::Lossless => (0u32, Self::quantize_and_filter(&q, 0, order as u32)),
            Mode::FixedQuality(target) => {
                // Quantizing mantissas by s bits gives |err| ≤ 2^(s−1)/scale.
                let max_step = (target * scale).max(1.0);
                let s = (max_step.log2().floor().max(0.0) as u32).min(40);
                (s, Self::quantize_and_filter(&q, s, order as u32))
            }
            Mode::FixedRate(rate) => {
                // Find the smallest quantization shift whose Rice-coded
                // stream fits the block budget, so smooth blocks spend the
                // rate on extra precision instead of padding.
                let budget = block_budget_bits(n, rate);
                let payload = budget.saturating_sub(
                    HEADER_BITS + 3 * 6 + order as u64 * WARMUP_BITS,
                );
                let mut s = 0u32;
                loop {
                    let f = Self::quantize_and_filter(&q, s, order as u32);
                    let zz: Vec<u64> = f[order..].iter().map(|&v| zigzag(v)).collect();
                    let size: u64 = quarters(&zz)
                        .map(|quarter| rice_size(quarter, rice_k_for(quarter)))
                        .sum();
                    if size <= payload || s >= 40 {
                        break (s, f);
                    }
                    s += 1;
                }
            }
        };

        let start_bits = w.bit_len();
        w.write_bits(exp as i64 as u64 & 0xFFFF, 16);
        w.write_bits(order as u64, 2);
        w.write_bits(s as u64, 6);
        match self.mode {
            Mode::FixedRate(rate) => {
                // Rice-coded payload padded to the exact block budget —
                // fixed rate means fixed size. Each quarter of the block
                // carries its own Rice parameter (values spanning decades
                // within a block are common for lognormal variables); the
                // 6-bit header field holds the first.
                let zz: Vec<u64> = filtered[order..].iter().map(|&v| zigzag(v)).collect();
                let mut ks: Vec<u32> = quarters(&zz).map(rice_k_for).collect();
                ks.resize(4, 0);
                for &k in &ks {
                    w.write_bits(k as u64, 6);
                }
                for &v in &filtered[..order] {
                    w.write_bits(zigzag(v), WARMUP_BITS as u32);
                }
                for (quarter, &k) in quarters(&zz).zip(&ks) {
                    for &z in quarter {
                        w.write_rice(z, k);
                    }
                }
                let target = block_budget_bits(n, rate) as usize;
                let used = w.bit_len() - start_bits;
                debug_assert!(used <= target, "block overran its budget: {used} > {target}");
                let mut pad = target - used;
                while pad > 0 {
                    let chunk = pad.min(48);
                    w.write_bits(0, chunk as u32);
                    pad -= chunk;
                }
            }
            _ => {
                // Uniform-width packing (after verbatim warm-ups) for
                // lossless / fixed-quality modes.
                let width = bits_needed(&filtered[order..]).clamp(1, 56);
                w.write_bits(width as u64, 6);
                for &v in &filtered[..order] {
                    w.write_bits(zigzag(v), WARMUP_BITS as u32);
                }
                let maxv = if width >= 63 { u64::MAX } else { (1u64 << width) - 1 };
                for &v in &filtered[order..] {
                    w.write_bits(zigzag(v).min(maxv), width);
                }
            }
        }
    }

    fn decompress_block(
        &self,
        r: &mut BitReader<'_>,
        n: usize,
    ) -> Result<Vec<f32>, CodecError> {
        let start = r.bits_consumed();
        let exp = (r.read_bits(16)? as u16) as i16 as i32;
        let order = r.read_bits(2)? as u32;
        let s = r.read_bits(6)? as u32;
        let field = r.read_bits(6)? as u32; // Rice k (fixed-rate) or width
        if order > 2 {
            return Err(CodecError::Corrupt("bad APAX block header"));
        }
        let warmup = (order as usize).min(n);
        let mut q = Vec::with_capacity(n);
        if let Mode::FixedRate(rate) = self.mode {
            let mut ks = [field, 0, 0, 0];
            for slot in ks.iter_mut().skip(1) {
                *slot = r.read_bits(6)? as u32;
            }
            if ks.iter().any(|&k| k > 40) {
                return Err(CodecError::Corrupt("bad APAX rice parameter"));
            }
            for _ in 0..warmup {
                q.push(unzigzag(r.read_bits(28)?));
            }
            let rest = n - warmup;
            let chunk = rest.div_ceil(4).max(1);
            for i in 0..rest {
                let k = ks[(i / chunk).min(3)];
                q.push(unzigzag(r.read_rice(k)?));
            }
            integrate(&mut q, order);
            // Skip the block's padding.
            let target = block_budget_bits(n, rate) as usize;
            let used = r.bits_consumed() - start;
            if used > target {
                return Err(CodecError::Corrupt("APAX block exceeds fixed-rate budget"));
            }
            let mut pad = target - used;
            while pad > 0 {
                let chunk = pad.min(48);
                r.read_bits(chunk as u32)?;
                pad -= chunk;
            }
        } else {
            let width = field;
            if width == 0 || width > 56 {
                return Err(CodecError::Corrupt("bad APAX block header"));
            }
            for _ in 0..warmup {
                q.push(unzigzag(r.read_bits(28)?));
            }
            for _ in warmup..n {
                let zz = r.read_bits(width)?;
                q.push(unzigzag(zz));
            }
            integrate(&mut q, order);
        }
        let shift = BFP_BITS as i32 - 2 - exp;
        let inv_scale = 2f64.powi(-(shift - s as i32));
        Ok(q.into_iter().map(|v| (v as f64 * inv_scale) as f32).collect())
    }
}

/// Round-to-nearest arithmetic right shift.
#[inline]
fn round_shift(v: i64, s: u32) -> i64 {
    if s == 0 {
        v
    } else {
        (v + (1i64 << (s - 1))) >> s
    }
}

impl Codec for Apax {
    fn name(&self) -> String {
        match self.mode {
            Mode::FixedRate(r) => format!("APAX-{}", r),
            Mode::FixedQuality(q) => format!("APAX-q{q:.0e}"),
            Mode::Lossless => "APAX-lossless".to_string(),
        }
    }

    fn properties(&self) -> CodecProperties {
        // Table 1 row "APAX": lossless Y (32-bit only), special N, freely
        // available N (commercial), fixed quality Y, fixed CR Y, 32&64 Y.
        CodecProperties {
            lossless_mode: true,
            special_values: false,
            freely_available: false,
            fixed_quality: true,
            fixed_cr: true,
            bits_32_and_64: true,
        }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        let mut out = Vec::new();
        crate::write_layout_header(&mut out, layout);
        let mut w = BitWriter::new();
        for block in data.chunks(BLOCK) {
            self.compress_block(block, &mut w);
        }
        out.extend(w.finish());
        out
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let bytes = crate::check_layout_header(bytes, layout)?;
        let n = layout.len();
        let mut r = BitReader::new(bytes);
        let mut out = Vec::with_capacity(n);
        let mut done = 0usize;
        while done < n {
            let len = BLOCK.min(n - done);
            out.extend(self.decompress_block(&mut r, len)?);
            done += len;
        }
        Ok(out)
    }
}

/// The APAX profiler: sweeps fixed rates, reports quality per rate, and
/// recommends the highest rate meeting the correlation threshold the paper
/// adopts (ρ ≥ 0.99999).
#[derive(Debug)]
pub struct Profiler {
    /// Rates to sweep, descending aggressiveness.
    pub rates: Vec<f64>,
    /// Correlation threshold for the recommendation.
    pub rho_threshold: f64,
}

/// One profiler measurement.
#[derive(Debug, Clone, Copy)]
pub struct ProfileEntry {
    /// Encoding rate (CR = 1/rate).
    pub rate: f64,
    /// Pearson correlation of reconstruction vs original.
    pub pearson: f64,
    /// Maximum absolute error.
    pub max_abs_err: f64,
    /// Compressed size in bytes.
    pub bytes: usize,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler { rates: vec![8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0], rho_threshold: 0.99999 }
    }
}

impl Profiler {
    /// Profile `data`, returning per-rate quality and the recommended rate
    /// (the most aggressive meeting the threshold; `None` if none does).
    pub fn profile(&self, data: &[f32], layout: Layout) -> (Vec<ProfileEntry>, Option<f64>) {
        let mut entries = Vec::new();
        let mut recommended = None;
        for &rate in &self.rates {
            let codec = Apax::fixed_rate(rate);
            let bytes = codec.compress(data, layout);
            let back = codec.decompress(&bytes, layout).expect("own stream");
            let (rho, max_err) = quality(data, &back);
            entries.push(ProfileEntry { rate, pearson: rho, max_abs_err: max_err, bytes: bytes.len() });
            if recommended.is_none() && rho >= self.rho_threshold {
                recommended = Some(rate);
            }
        }
        (entries, recommended)
    }
}

fn quality(a: &[f32], b: &[f32]) -> (f64, f64) {
    let n = a.len() as f64;
    if a.is_empty() {
        return (1.0, 0.0);
    }
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    let mut emax = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let (x, y) = (x as f64, y as f64);
        sab += (x - ma) * (y - mb);
        saa += (x - ma) * (x - ma);
        sbb += (y - mb) * (y - mb);
        emax = emax.max((x - y).abs());
    }
    let rho = if saa <= 0.0 || sbb <= 0.0 { 1.0 } else { sab / (saa.sqrt() * sbb.sqrt()) };
    (rho, emax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip;
    use crate::testdata::{noisy_field, smooth_field};

    #[test]
    fn fixed_rate_hits_exact_budget() {
        let (data, layout) = smooth_field(BLOCK * 8, 1);
        for rate in [2.0f64, 4.0, 5.0] {
            let codec = Apax::fixed_rate(rate);
            let bytes = codec.compress(&data, layout);
            let expect = (data.len() as f64 * 4.0 / rate).ceil();
            let got = bytes.len() as f64;
            assert!(
                (got - expect).abs() <= expect * 0.01 + 16.0,
                "rate {rate}: {got} bytes vs expected {expect}"
            );
        }
    }

    #[test]
    fn fixed_rate_roundtrips_with_small_error() {
        let (data, layout) = smooth_field(BLOCK * 4 + 57, 2);
        for rate in [2.0f64, 4.0, 5.0] {
            let codec = Apax::fixed_rate(rate);
            let (back, _) = roundtrip(&codec, &data, layout);
            assert_eq!(back.len(), data.len());
            let range = 330.0f64;
            for (&a, &b) in data.iter().zip(&back) {
                let err = (a as f64 - b as f64).abs() / range;
                assert!(err < 0.05, "rate {rate}: normalized err {err}");
            }
        }
    }

    #[test]
    fn higher_rate_means_higher_error() {
        let (data, layout) = smooth_field(BLOCK * 8, 1);
        let err = |rate: f64| -> f64 {
            let (back, _) = roundtrip(&Apax::fixed_rate(rate), &data, layout);
            data.iter()
                .zip(&back)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .fold(0.0, f64::max)
        };
        let e2 = err(2.0);
        let e5 = err(5.0);
        assert!(e5 > e2, "rate 5 err {e5} must exceed rate 2 err {e2}");
    }

    #[test]
    fn lossless_mode_is_block_exact() {
        // Block floating point is exact relative to the block's shared
        // exponent: |err| ≤ block_max · 2^-24. Samples much smaller than
        // their block's max necessarily lose trailing mantissa bits — the
        // reason Table 1 footnotes APAX's lossless mode.
        let (data, layout) = noisy_field(BLOCK * 3 + 11);
        let (back, _) = roundtrip(&Apax::lossless(), &data, layout);
        for (block_a, block_b) in data.chunks(BLOCK).zip(back.chunks(BLOCK)) {
            let max = block_a.iter().fold(0.0f64, |m, &v| m.max(v.abs() as f64));
            let tol = max.max(1e-300) * 2f64.powi(-23);
            for (&a, &b) in block_a.iter().zip(block_b) {
                let err = (a as f64 - b as f64).abs();
                assert!(err <= tol, "{a} -> {b} (err {err}, tol {tol})");
            }
        }
    }

    #[test]
    fn fixed_quality_meets_absolute_target() {
        let (data, layout) = smooth_field(BLOCK * 6, 1);
        for target in [1.0f64, 0.1, 0.01] {
            let codec = Apax::fixed_quality(target);
            let (back, _) = roundtrip(&codec, &data, layout);
            for (&a, &b) in data.iter().zip(&back) {
                let err = (a as f64 - b as f64).abs();
                assert!(err <= target * 1.5 + 1e-6, "target {target}: err {err}");
            }
        }
    }

    #[test]
    fn fixed_quality_rate_varies_with_target() {
        let (data, layout) = smooth_field(BLOCK * 6, 1);
        let loose = Apax::fixed_quality(1.0).compress(&data, layout).len();
        let tight = Apax::fixed_quality(0.001).compress(&data, layout).len();
        assert!(tight > loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn derivative_filter_chooses_sensibly() {
        // A linear ramp should prefer differencing.
        let ramp: Vec<i64> = (0..256).map(|i| i * 1000).collect();
        assert!(choose_derivative(&ramp) >= 1);
        // White noise should prefer order 0.
        let mut state = 99u64;
        let noise: Vec<i64> = (0..256)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as i64 - (1 << 23)
            })
            .collect();
        assert_eq!(choose_derivative(&noise), 0);
    }

    #[test]
    fn derivative_integrate_roundtrip() {
        let q: Vec<i64> = (0..100).map(|i| (i * i) as i64 - 50).collect();
        for order in 0..3u32 {
            let mut f = q.clone();
            apply_derivative(&mut f, order);
            integrate(&mut f, order);
            assert_eq!(f, q, "order {order}");
        }
    }

    #[test]
    fn blocks_with_zeros_and_constants() {
        let mut data = vec![0.0f32; BLOCK];
        data.extend(vec![7.25f32; BLOCK]);
        let layout = Layout::linear(data.len());
        let (back, _) = roundtrip(&Apax::fixed_rate(4.0), &data, layout);
        for (&a, &b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn partial_final_block() {
        let (data, layout) = smooth_field(BLOCK + 37, 1);
        let (back, _) = roundtrip(&Apax::fixed_rate(2.0), &data, layout);
        assert_eq!(back.len(), data.len());
    }

    #[test]
    fn profiler_recommends_reasonable_rate() {
        let (data, layout) = smooth_field(BLOCK * 16, 1);
        let profiler = Profiler::default();
        let (entries, rec) = profiler.profile(&data, layout);
        assert_eq!(entries.len(), 7);
        // Smooth data must admit at least rate 2 at five-nines correlation.
        let rec = rec.expect("profiler should find an acceptable rate");
        assert!(rec >= 2.0);
        // Entries must show monotone-ish quality degradation with rate.
        let rho2 = entries.iter().find(|e| e.rate == 2.0).unwrap().pearson;
        let rho8 = entries.iter().find(|e| e.rate == 8.0).unwrap().pearson;
        assert!(rho2 >= rho8);
    }

    #[test]
    fn corrupt_stream_is_error() {
        let (data, layout) = smooth_field(BLOCK * 2, 1);
        let codec = Apax::fixed_rate(4.0);
        let bytes = codec.compress(&data, layout);
        assert!(codec.decompress(&bytes[..8], layout).is_err());
    }

    #[test]
    fn properties_match_table1() {
        let p = Apax::fixed_rate(2.0).properties();
        assert!(p.lossless_mode);
        assert!(!p.special_values);
        assert!(!p.freely_available, "APAX is the one commercial product");
        assert!(p.fixed_quality);
        assert!(p.fixed_cr);
        assert!(p.bits_32_and_64);
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn bad_rate_rejected() {
        Apax::fixed_rate(1.0);
    }
}
