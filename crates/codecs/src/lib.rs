//! The four lossy compressor families evaluated in Baker et al. (HPDC'14),
//! reimplemented from scratch in Rust.
//!
//! | Module | Paper algorithm | Mechanism reproduced |
//! |---|---|---|
//! | [`fpzip`] | fpzip (Lindstrom & Isenburg 2006) | Lorenzo prediction over the monotone integer mapping of floats; lossy by truncating to 8/16/24/32 retained bits |
//! | [`isabela`] | ISABELA (Lakshminarasimhan et al. 2011) | per-window sorting + B-spline fit of the sorted curve + per-point relative-error guarantee |
//! | [`apax`] | APAX (Samplify; Wegener patent) | adaptive derivative pre-filter + block-floating-point coding, exact fixed-rate and fixed-quality modes, profiler |
//! | [`grib2`] | GRIB2 + JPEG2000 (WMO) | decimal-scaled integer packing with a bitmap for missing data, then a reversible CDF 5/3 wavelet + entropy coder |
//!
//! All codecs implement the [`Codec`] trait over single-precision fields
//! with a spatial [`Layout`], produce self-contained byte streams, and
//! advertise their [`CodecProperties`] — the six attributes of the paper's
//! Table 1. [`guard::SpecialValueGuard`] adds special-value (1e35 fill)
//! handling around codecs that lack it, the pre/post-processing route the
//! paper anticipates; GRIB2 handles missing points natively via its bitmap.
//!
//! [`Variant`] enumerates the nine configurations the paper's evaluation
//! sweeps (GRIB2, APAX-2/4/5, fpzip-16/24, ISABELA-0.1/0.5/1.0) plus the
//! NetCDF-4 lossless fallback used by the hybrid methods.

pub mod apax;
pub mod chunked;
pub mod obs_wrap;
pub mod fpzip;
pub mod fpzip64;
pub mod grib2;
pub mod guard;
pub mod isabela;
pub mod sz;
pub mod varint;
pub mod wavelet;

mod variant;

pub use obs_wrap::ObsCodec;
pub use sz::{ErrorBound, Sz};
pub use variant::{Family, NetCdf4Codec, Variant};

/// Spatial layout of a field handed to a codec.
///
/// Fields are level-major (`data[lev * npts + p]`); `rows × cols` is the
/// latitude-major 2-D embedding of the horizontal point list supplied by
/// `cc-grid` (`rows·cols ≥ npts`), which transform codecs use for 2-D
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Vertical levels (1 for 2-D variables).
    pub nlev: usize,
    /// Horizontal points per level.
    pub npts: usize,
    /// Rows of the 2-D embedding.
    pub rows: usize,
    /// Columns of the 2-D embedding.
    pub cols: usize,
}

impl Layout {
    /// Layout for a field on `grid` with `nlev` levels.
    pub fn for_grid(grid: &cc_grid::Grid, nlev: usize) -> Self {
        let (rows, cols) = grid.shape_2d();
        Layout { nlev, npts: grid.len(), rows, cols }
    }

    /// A 1-D layout (tests, generic data): `npts = n`, single level, and a
    /// near-square embedding.
    pub fn linear(n: usize) -> Self {
        let cols = (n as f64).sqrt().ceil().max(1.0) as usize;
        let rows = n.div_ceil(cols.max(1)).max(1);
        Layout { nlev: 1, npts: n, rows, cols }
    }

    /// Total number of values in the field.
    pub fn len(&self) -> usize {
        self.nlev * self.npts
    }

    /// True iff the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decode-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Stream too short / framing damaged.
    Corrupt(&'static str),
    /// Bit-level decode failure.
    Bits(cc_lossless::Error),
    /// Stream does not match the supplied layout.
    LayoutMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(m) => write!(f, "corrupt codec stream: {m}"),
            CodecError::Bits(e) => write!(f, "bitstream error: {e}"),
            CodecError::LayoutMismatch => write!(f, "stream does not match layout"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<cc_lossless::Error> for CodecError {
    fn from(e: cc_lossless::Error) -> Self {
        CodecError::Bits(e)
    }
}

/// The six algorithm attributes of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecProperties {
    /// Has a lossless mode.
    pub lossless_mode: bool,
    /// Handles special/missing values natively.
    pub special_values: bool,
    /// Open source / freely available (true for everything here except the
    /// APAX reimplementation, whose original is commercial).
    pub freely_available: bool,
    /// Supports a fixed-quality mode (quality target, varying CR).
    pub fixed_quality: bool,
    /// Supports a fixed-compression-rate mode (exact CR, varying quality).
    pub fixed_cr: bool,
    /// Handles both 32- and 64-bit data.
    pub bits_32_and_64: bool,
}

/// A lossy (or lossless) compressor over single-precision fields.
pub trait Codec: Send + Sync {
    /// Display name, e.g. `"fpzip-16"`, `"APAX-4"`, `"ISA-0.5"`, `"GRIB2"`.
    fn name(&self) -> String;

    /// The Table-1 attribute row for this algorithm family.
    fn properties(&self) -> CodecProperties;

    /// Compress `data` (length `layout.len()`), producing a self-contained
    /// byte stream.
    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8>;

    /// Reconstruct a field from `bytes`; `layout` must match compression.
    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError>;
}

impl Codec for Box<dyn Codec> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn properties(&self) -> CodecProperties {
        (**self).properties()
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        (**self).compress(data, layout)
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        (**self).decompress(bytes, layout)
    }
}

/// Convenience: compress, measure, reconstruct in one call.
/// Returns `(reconstructed, compressed_len)`.
pub fn roundtrip(codec: &dyn Codec, data: &[f32], layout: Layout) -> (Vec<f32>, usize) {
    try_roundtrip(codec, data, layout).expect("roundtrip of freshly compressed data")
}

/// Fallible sibling of [`roundtrip`]: compress then decompress, surfacing
/// the decode error instead of panicking. Returns `(reconstructed,
/// compressed_len)`.
pub fn try_roundtrip(
    codec: &dyn Codec,
    data: &[f32],
    layout: Layout,
) -> Result<(Vec<f32>, usize), CodecError> {
    let bytes = codec.compress(data, layout);
    let n = bytes.len();
    Ok((codec.decompress(&bytes, layout)?, n))
}

/// Byte length of the layout echo every codec stream starts with.
pub const LAYOUT_HEADER_LEN: usize = 16;

/// Write the 16-byte layout echo (`nlev`, `npts`, `rows`, `cols` as
/// little-endian u32) that prefixes every codec stream, letting decoders
/// verify the stream was produced for the layout they were handed.
pub fn write_layout_header(out: &mut Vec<u8>, layout: Layout) {
    for v in [layout.nlev, layout.npts, layout.rows, layout.cols] {
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
}

/// Strip and validate the layout echo written by [`write_layout_header`],
/// returning the stream body. A short prefix is [`CodecError::Corrupt`];
/// a well-formed echo for a different layout is
/// [`CodecError::LayoutMismatch`].
pub fn check_layout_header(bytes: &[u8], layout: Layout) -> Result<&[u8], CodecError> {
    if bytes.len() < LAYOUT_HEADER_LEN {
        return Err(CodecError::Corrupt("truncated layout header"));
    }
    let rd = |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
    let want = [layout.nlev as u32, layout.npts as u32, layout.rows as u32, layout.cols as u32];
    if [rd(0), rd(4), rd(8), rd(12)] != want {
        return Err(CodecError::LayoutMismatch);
    }
    Ok(&bytes[LAYOUT_HEADER_LEN..])
}

#[cfg(test)]
pub(crate) mod testdata {
    use super::Layout;

    /// Smooth 2-levels climate-like field plus its layout.
    pub fn smooth_field(npts: usize, nlev: usize) -> (Vec<f32>, Layout) {
        let layout = Layout { nlev, npts, ..Layout::linear(npts) };
        let mut data = Vec::with_capacity(layout.len());
        for lev in 0..nlev {
            for p in 0..npts {
                let x = p as f32 / npts as f32;
                let v = 240.0
                    + 30.0 * (6.3 * x).sin()
                    + 5.0 * (31.0 * x + lev as f32).cos()
                    + lev as f32 * 2.0;
                data.push(v);
            }
        }
        (data, layout)
    }

    /// Noisy lognormal field (chemistry-like).
    pub fn noisy_field(npts: usize) -> (Vec<f32>, Layout) {
        let layout = Layout::linear(npts);
        let mut state = 0x5EEDu64;
        let data = (0..npts)
            .map(|p| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                let x = p as f64 / npts as f64;
                (10f64.powf(-6.0 + 2.0 * (4.0 * x).sin() + 1.5 * (u - 0.5))) as f32
            })
            .collect();
        (data, layout)
    }
}
