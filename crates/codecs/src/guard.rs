//! Special-value pre/post-processing for codecs without native support.
//!
//! fpzip, ISABELA, and APAX all lack special-value handling (Table 1); the
//! paper assumes the capability "could be either easily incorporated into
//! the algorithm or handled through our pre- and post-processing". This is
//! that pre/post-processing: the 1e35 fill points are recorded in a
//! run-length-encoded bitmap, replaced by the field's mean (keeping the
//! stream smooth for the inner codec), and restored exactly after
//! decompression.

use crate::{Codec, CodecError, CodecProperties, Layout};
use cc_lossless::bitio::{BitReader, BitWriter};

/// Magnitude at which a value counts as special.
const SPECIAL_THRESHOLD: f32 = 1.0e30;
/// The fill value restored on decode.
const FILL: f32 = 1.0e35;

/// Wrap `inner` with special-value masking/restoration.
#[derive(Debug, Clone)]
pub struct SpecialValueGuard<C> {
    inner: C,
}

impl<C: Codec> SpecialValueGuard<C> {
    /// Guard `inner`.
    pub fn new(inner: C) -> Self {
        SpecialValueGuard { inner }
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

fn is_special(v: f32) -> bool {
    !v.is_finite() || v.abs() >= SPECIAL_THRESHOLD
}

/// RLE-encode a bitmap: alternating run lengths (Rice-coded, k=6) starting
/// with the "not special" state.
fn write_bitmap(w: &mut BitWriter, mask: &[bool]) {
    let mut state = false;
    let mut run = 0u64;
    for &m in mask {
        if m == state {
            run += 1;
        } else {
            w.write_rice(run, 6);
            state = m;
            run = 1;
        }
    }
    w.write_rice(run, 6);
}

fn read_bitmap(r: &mut BitReader<'_>, n: usize) -> Result<Vec<bool>, CodecError> {
    let mut mask = Vec::with_capacity(n);
    let mut state = false;
    let mut first = true;
    while mask.len() < n {
        let run = r.read_rice(6)? as usize;
        // The encoder only ever emits a zero-length run first (when the
        // mask starts in the special state); anywhere else it is corrupt
        // framing that would stall the decode without progress.
        if run == 0 && !first {
            return Err(CodecError::Corrupt("zero-length bitmap run"));
        }
        first = false;
        if run > n - mask.len() {
            return Err(CodecError::Corrupt("bitmap run overflows field"));
        }
        mask.extend(std::iter::repeat_n(state, run));
        state = !state;
    }
    Ok(mask)
}

impl<C: Codec> Codec for SpecialValueGuard<C> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn properties(&self) -> CodecProperties {
        // The guard supplies the special-value capability.
        CodecProperties { special_values: true, ..self.inner.properties() }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        let mask: Vec<bool> = data.iter().map(|&v| is_special(v)).collect();
        let n_special = mask.iter().filter(|&&m| m).count();
        let mut w = BitWriter::new();
        if n_special == 0 {
            w.write_bit(false);
            w.align_byte();
            let mut out = w.finish();
            out.extend(self.inner.compress(data, layout));
            return out;
        }
        w.write_bit(true);
        write_bitmap(&mut w, &mask);
        w.align_byte();
        // Replace special points with the mean of the rest so the inner
        // codec sees a smooth, in-range field.
        let mut sum = 0.0f64;
        for (&v, &m) in data.iter().zip(&mask) {
            if !m {
                sum += v as f64;
            }
        }
        let filler = if n_special == data.len() {
            0.0f32
        } else {
            (sum / (data.len() - n_special) as f64) as f32
        };
        let cleaned: Vec<f32> = data
            .iter()
            .zip(&mask)
            .map(|(&v, &m)| if m { filler } else { v })
            .collect();
        let mut out = w.finish();
        out.extend(self.inner.compress(&cleaned, layout));
        out
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let mut r = BitReader::new(bytes);
        let has_special = r.read_bit()?;
        if !has_special {
            r.align_byte();
            let offset = r.bits_consumed() / 8;
            return self.inner.decompress(&bytes[offset..], layout);
        }
        let mask = read_bitmap(&mut r, layout.len())?;
        r.align_byte();
        let offset = r.bits_consumed() / 8;
        let mut data = self.inner.decompress(&bytes[offset..], layout)?;
        if data.len() != mask.len() {
            return Err(CodecError::LayoutMismatch);
        }
        for (v, &m) in data.iter_mut().zip(&mask) {
            if m {
                *v = FILL;
            }
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apax::Apax;
    use crate::fpzip::Fpzip;
    use crate::isabela::Isabela;
    use crate::roundtrip;
    use crate::testdata::smooth_field;

    fn with_fills(mut data: Vec<f32>, step: usize) -> Vec<f32> {
        for i in (0..data.len()).step_by(step) {
            data[i] = 1.0e35;
        }
        data
    }

    #[test]
    fn guard_restores_fill_positions_exactly() {
        let (base, layout) = smooth_field(3000, 1);
        let data = with_fills(base, 11);
        let codec = SpecialValueGuard::new(Fpzip::new(16));
        let (back, _) = roundtrip(&codec, &data, layout);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            if a == 1.0e35 {
                assert_eq!(b, 1.0e35, "fill lost at {i}");
            } else {
                assert!(b.abs() < 1.0e30, "spurious special at {i}");
            }
        }
    }

    #[test]
    fn guard_transparent_without_specials() {
        let (data, layout) = smooth_field(2000, 2);
        let plain = Fpzip::lossless();
        let guarded = SpecialValueGuard::new(Fpzip::lossless());
        let (a, na) = roundtrip(&plain, &data, layout);
        let (b, nb) = roundtrip(&guarded, &data, layout);
        assert_eq!(a, b);
        assert!(nb <= na + 8, "guard overhead {nb} vs {na}");
    }

    #[test]
    fn guard_works_for_all_inner_codecs() {
        let (base, layout) = smooth_field(2048, 1);
        let data = with_fills(base, 17);
        let check = |codec: &dyn Codec| {
            let (back, _) = roundtrip(codec, &data, layout);
            for (&a, &b) in data.iter().zip(&back) {
                if a == 1.0e35 {
                    assert_eq!(b, 1.0e35, "{}", codec.name());
                }
            }
        };
        check(&SpecialValueGuard::new(Fpzip::new(24)));
        check(&SpecialValueGuard::new(Isabela::new(0.01)));
        check(&SpecialValueGuard::new(Apax::fixed_rate(4.0)));
    }

    #[test]
    fn all_special_field() {
        let data = vec![1.0e35f32; 600];
        let layout = Layout::linear(600);
        let codec = SpecialValueGuard::new(Apax::fixed_rate(2.0));
        let (back, _) = roundtrip(&codec, &data, layout);
        assert!(back.iter().all(|&v| v == 1.0e35));
    }

    #[test]
    fn guard_reports_special_capability() {
        let codec = SpecialValueGuard::new(Fpzip::new(16));
        assert!(codec.properties().special_values);
        assert!(!codec.inner().properties().special_values);
    }

    #[test]
    fn bitmap_rle_roundtrip() {
        let mask: Vec<bool> = (0..997).map(|i| i % 13 == 0 || (300..350).contains(&i)).collect();
        let mut w = BitWriter::new();
        write_bitmap(&mut w, &mask);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_bitmap(&mut r, mask.len()).unwrap(), mask);
    }

    #[test]
    fn bitmap_leading_zero_run_allowed() {
        // A mask that starts special begins with a legitimate zero-length
        // "not special" run.
        let mask: Vec<bool> = (0..64).map(|i| i < 10).collect();
        let mut w = BitWriter::new();
        write_bitmap(&mut w, &mask);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_bitmap(&mut r, mask.len()).unwrap(), mask);
    }

    #[test]
    fn bitmap_zero_run_mid_stream_rejected() {
        let mut w = BitWriter::new();
        w.write_rice(3, 6); // 3 not-special
        w.write_rice(0, 6); // zero-length run: corrupt, makes no progress
        w.write_rice(7, 6);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            read_bitmap(&mut r, 10),
            Err(CodecError::Corrupt("zero-length bitmap run"))
        ));
    }

    #[test]
    fn bitmap_run_overflowing_field_rejected() {
        let mut w = BitWriter::new();
        w.write_rice(1000, 6);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            read_bitmap(&mut r, 10),
            Err(CodecError::Corrupt("bitmap run overflows field"))
        ));
    }

    #[test]
    fn bitmap_truncated_rice_code_rejected() {
        // An all-ones buffer never terminates a Rice quotient; the reader
        // must hit end-of-input and error rather than spin or panic.
        for bytes in [&[][..], &[0xFF, 0xFF][..]] {
            let mut r = BitReader::new(bytes);
            assert!(matches!(read_bitmap(&mut r, 10), Err(CodecError::Bits(_))));
        }
    }

    #[test]
    fn nan_and_inf_treated_as_special() {
        let (mut data, layout) = smooth_field(1000, 1);
        data[5] = f32::NAN;
        data[6] = f32::INFINITY;
        let codec = SpecialValueGuard::new(Fpzip::lossless());
        let (back, _) = roundtrip(&codec, &data, layout);
        // NaN/Inf normalize to the canonical fill on reconstruction.
        assert_eq!(back[5], 1.0e35);
        assert_eq!(back[6], 1.0e35);
    }
}
