//! GRIB2-style packing with JPEG2000-class transform coding.
//!
//! Reproduces the pipeline the paper evaluates as "GRIB2 + jpeg2000":
//!
//! 1. **Decimal scaling** (WMO GRIB2 packing): each 2-D level is mapped to
//!    non-negative integers `y = round((x − R) · 10^D)` with reference
//!    value `R` = level minimum and decimal scale factor `D`. This is the
//!    lossy step; the absolute error is bounded by `0.5 · 10^−D`. As the
//!    paper stresses, `D` must be customized per variable — a single global
//!    `D` performs terribly across variables whose magnitudes differ by
//!    eleven orders.
//! 2. **Bitmap section**: missing points (the 1e35 fill) are recorded in a
//!    present/absent bitmap exactly as GRIB2 does — making this the only
//!    evaluated method with native special-value support (Table 1).
//! 3. **JPEG2000-class coding**: the integer level is embedded in the
//!    grid's latitude-major 2-D layout, transformed with the reversible
//!    CDF 5/3 wavelet ([`crate::wavelet`]), and the coefficients are
//!    entropy-coded with adaptive Golomb-Rice blocks. The transform stage
//!    is exactly invertible, so quantization remains the only loss.

use crate::{Codec, CodecError, CodecProperties, Layout};
use cc_lossless::bitio::{BitReader, BitWriter};

/// Magnitude at which a value counts as missing (CESM fill is 1e35).
const SPECIAL_THRESHOLD: f32 = 1.0e30;
/// The fill value written back for missing points.
const FILL: f32 = 1.0e35;

/// Wavelet decomposition levels.
const WAVELET_LEVELS: usize = 3;
/// Rice coding block size for coefficients.
const RICE_BLOCK: usize = 512;

/// Decimal-scale policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DScale {
    /// Choose `D` from each level's range so the scaled integers use about
    /// 16 bits — the "specify a D for each variable depending on its
    /// magnitude" customization the paper describes.
    Auto,
    /// A fixed `D` (the paper's initial, poorly performing global setting,
    /// or the output of the RMSZ-ensemble-guided search).
    Fixed(i32),
}

/// Second-stage coding of the scaled integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packing {
    /// JPEG2000-class: reversible CDF 5/3 wavelet + Rice coding — the
    /// configuration the paper evaluates.
    Jpeg2000,
    /// WMO "complex packing with spatial differencing" (GRIB2 template
    /// 5.3): second-order differences along the scan order, Rice-coded.
    /// The production-meteorology alternative when no J2K library is
    /// available; compared against Jpeg2000 in the ablation benches.
    ComplexDiff,
}

/// The GRIB2+JPEG2000 codec.
#[derive(Debug, Clone, Copy)]
pub struct Grib2 {
    dscale: DScale,
    packing: Packing,
}

impl Grib2 {
    /// Magnitude-adaptive decimal scaling (the paper's presented variant).
    pub fn auto() -> Self {
        Grib2 { dscale: DScale::Auto, packing: Packing::Jpeg2000 }
    }

    /// Fixed decimal scale factor `D`.
    pub fn fixed(d: i32) -> Self {
        assert!((-30..=30).contains(&d), "decimal scale out of range");
        Grib2 { dscale: DScale::Fixed(d), packing: Packing::Jpeg2000 }
    }

    /// Select the second-stage packing (default [`Packing::Jpeg2000`]).
    pub fn with_packing(mut self, packing: Packing) -> Self {
        self.packing = packing;
        self
    }

    /// The policy in use.
    pub fn dscale(&self) -> DScale {
        self.dscale
    }

    /// The second-stage packing in use.
    pub fn packing(&self) -> Packing {
        self.packing
    }

    /// Magnitude-based choice of `D` for a level with the given range:
    /// scale so the quantized range occupies roughly 13 bits. (WMO
    /// practice keeps packed fields near 12-16 bits; the paper tuned each
    /// variable's D by magnitude and then by the RMSZ ensemble test.)
    pub fn auto_decimal_scale(range: f64) -> i32 {
        if range <= 0.0 {
            return 0;
        }
        ((8_192.0 / range).log10().floor() as i32).clamp(-30, 30)
    }

    fn level_d(&self, range: f64) -> i32 {
        match self.dscale {
            DScale::Auto => Self::auto_decimal_scale(range),
            DScale::Fixed(d) => d,
        }
    }
}

fn rice_k_for(values: &[u64]) -> u32 {
    let mean = values.iter().map(|&v| v as u128).sum::<u128>() / values.len().max(1) as u128;
    let mut k = 0u32;
    while (1u128 << (k + 1)) <= mean + 1 && k < 40 {
        k += 1;
    }
    k
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl Codec for Grib2 {
    fn name(&self) -> String {
        match self.dscale {
            DScale::Auto => "GRIB2".to_string(),
            DScale::Fixed(d) => format!("GRIB2(D={d})"),
        }
    }

    fn properties(&self) -> CodecProperties {
        // Table 1 row "GRIB2 + jpeg2000": lossless N (format conversion is
        // itself lossy), special Y (bitmap), free Y, fixed quality N,
        // fixed CR N, 32-&64-bit N (GRIB2 packs to its own integer format).
        CodecProperties {
            lossless_mode: false,
            special_values: true,
            freely_available: true,
            fixed_quality: false,
            fixed_cr: false,
            bits_32_and_64: false,
        }
    }

    fn compress(&self, data: &[f32], layout: Layout) -> Vec<u8> {
        assert_eq!(data.len(), layout.len(), "data length must match layout");
        let (npts, rows, cols) = (layout.npts, layout.rows, layout.cols);
        assert!(rows * cols >= npts, "2-D embedding smaller than point list");
        let mut out = Vec::new();
        crate::write_layout_header(&mut out, layout);
        let mut w = BitWriter::new();
        for lev in 0..layout.nlev {
            let level = &data[lev * npts..(lev + 1) * npts];

            // Bitmap section (only when anything is missing).
            let missing: Vec<bool> = level.iter().map(|&v| !v.is_finite() || v.abs() >= SPECIAL_THRESHOLD).collect();
            let any_missing = missing.iter().any(|&m| m);
            w.write_bit(any_missing);
            if any_missing {
                for &m in &missing {
                    w.write_bit(m);
                }
            }

            // Reference value and decimal scale.
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for (&v, &m) in level.iter().zip(&missing) {
                if !m {
                    min = min.min(v as f64);
                    max = max.max(v as f64);
                }
            }
            let present_any = min.is_finite();
            w.write_bit(present_any);
            if !present_any {
                continue; // fully missing level: bitmap says it all
            }
            let d = self.level_d(max - min);
            let scale = 10f64.powi(d);
            w.write_bits((d + 64) as u64, 8);
            w.write_bits(min.to_bits() & ((1u64 << 57) - 1), 57);
            w.write_bits(min.to_bits() >> 57, 7);

            // Quantize into the 2-D embedding (missing and padding → 0).
            let mut field = vec![0i64; rows * cols];
            for (p, (&v, &m)) in level.iter().zip(&missing).enumerate() {
                if !m {
                    field[p] = ((v as f64 - min) * scale).round() as i64;
                }
            }

            // Second stage: JPEG2000-class wavelet or WMO complex packing
            // with spatial differencing. Both are exactly invertible.
            match self.packing {
                Packing::Jpeg2000 => {
                    crate::wavelet::fwd53_2d(&mut field, rows, cols, WAVELET_LEVELS);
                }
                Packing::ComplexDiff => {
                    // Second-order differences along the scan order
                    // (template 5.3's spatial differencing). Wrapping, so
                    // the inverse integration can wrap identically on
                    // corrupt-stream extremes without trapping.
                    for i in (2..field.len()).rev() {
                        field[i] = field[i]
                            .wrapping_sub(field[i - 1].wrapping_mul(2))
                            .wrapping_add(field[i - 2]);
                    }
                    if field.len() >= 2 {
                        let d1 = field[1].wrapping_sub(field[0]);
                        field[1] = d1;
                    }
                }
            }
            for block in field.chunks(RICE_BLOCK) {
                let zz: Vec<u64> = block.iter().map(|&v| zigzag(v)).collect();
                let k = rice_k_for(&zz);
                w.write_bits(k as u64, 6);
                for &z in &zz {
                    w.write_rice(z, k);
                }
            }
        }
        out.extend(w.finish());
        out
    }

    fn decompress(&self, bytes: &[u8], layout: Layout) -> Result<Vec<f32>, CodecError> {
        let bytes = crate::check_layout_header(bytes, layout)?;
        let (npts, rows, cols) = (layout.npts, layout.rows, layout.cols);
        if rows.checked_mul(cols).is_none_or(|rc| rc < npts) {
            return Err(CodecError::LayoutMismatch);
        }
        let mut r = BitReader::new(bytes);
        let mut out = Vec::with_capacity(layout.len());
        for _lev in 0..layout.nlev {
            let any_missing = r.read_bit()?;
            let mut missing = vec![false; npts];
            if any_missing {
                for m in missing.iter_mut() {
                    *m = r.read_bit()?;
                }
            }
            let present_any = r.read_bit()?;
            if !present_any {
                out.extend(std::iter::repeat_n(FILL, npts));
                continue;
            }
            let d = r.read_bits(8)? as i32 - 64;
            if !(-40..=40).contains(&d) {
                return Err(CodecError::Corrupt("bad decimal scale"));
            }
            let lo = r.read_bits(57)?;
            let hi = r.read_bits(7)?;
            let min = f64::from_bits(lo | (hi << 57));
            if !min.is_finite() {
                return Err(CodecError::Corrupt("bad reference value"));
            }
            let inv_scale = 10f64.powi(-d);

            let mut field = vec![0i64; rows * cols];
            let mut i = 0usize;
            while i < field.len() {
                let n = RICE_BLOCK.min(field.len() - i);
                let k = r.read_bits(6)?;
                if k > 40 {
                    return Err(CodecError::Corrupt("bad rice parameter"));
                }
                for slot in field[i..i + n].iter_mut() {
                    *slot = unzigzag(r.read_rice(k as u32)?);
                }
                i += n;
            }
            match self.packing {
                Packing::Jpeg2000 => {
                    crate::wavelet::inv53_2d(&mut field, rows, cols, WAVELET_LEVELS);
                }
                Packing::ComplexDiff => {
                    if field.len() >= 2 {
                        field[1] = field[1].wrapping_add(field[0]);
                    }
                    for i in 2..field.len() {
                        let v = field[i]
                            .wrapping_add(field[i - 1].wrapping_mul(2))
                            .wrapping_sub(field[i - 2]);
                        field[i] = v;
                    }
                }
            }
            for (p, &m) in missing.iter().enumerate() {
                if m {
                    out.push(FILL);
                } else {
                    out.push((min + field[p] as f64 * inv_scale) as f32);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundtrip;
    use crate::testdata::{noisy_field, smooth_field};

    #[test]
    fn error_bounded_by_decimal_scale() {
        let (data, layout) = smooth_field(3000, 2);
        for d in [0i32, 1, 2] {
            let codec = Grib2::fixed(d);
            let (back, _) = roundtrip(&codec, &data, layout);
            let bound = 0.5 * 10f64.powi(-d) + 1e-4; // + f32 cast slack
            for (&a, &b) in data.iter().zip(&back) {
                let err = (a as f64 - b as f64).abs();
                assert!(err <= bound, "D={d}: err {err} > {bound}");
            }
        }
    }

    #[test]
    fn auto_scale_tracks_magnitude() {
        // Range 450 (FSDSC-like) → D ≈ 2; range 1e-8 (SO2-like) → large D.
        let d_flux = Grib2::auto_decimal_scale(450.0);
        let d_chem = Grib2::auto_decimal_scale(1e-8);
        assert!((1..=3).contains(&d_flux), "flux D {d_flux}");
        assert!(d_chem > 10, "chem D {d_chem}");
        assert_eq!(Grib2::auto_decimal_scale(0.0), 0);
    }

    #[test]
    fn auto_mode_roundtrips_with_relative_accuracy() {
        let (data, layout) = smooth_field(4000, 1);
        let codec = Grib2::auto();
        let (back, _) = roundtrip(&codec, &data, layout);
        let range = 330.0 - 150.0;
        for (&a, &b) in data.iter().zip(&back) {
            let err = (a as f64 - b as f64).abs() / range;
            assert!(err < 1e-3, "normalized err {err}");
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let (data, layout) = smooth_field(8192, 1);
        let bytes = Grib2::auto().compress(&data, layout);
        let cr = bytes.len() as f64 / (data.len() * 4) as f64;
        assert!(cr < 0.5, "smooth-field CR {cr}");
    }

    #[test]
    fn special_values_roundtrip_natively() {
        let (mut data, layout) = smooth_field(2000, 1);
        for i in (0..2000).step_by(7) {
            data[i] = 1.0e35;
        }
        let codec = Grib2::auto();
        let (back, _) = roundtrip(&codec, &data, layout);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            if a == 1.0e35 {
                assert_eq!(b, 1.0e35, "fill lost at {i}");
            } else {
                assert!((a - b).abs() < 0.1, "value at {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fully_missing_level() {
        let data = vec![1.0e35f32; 500];
        let layout = Layout::linear(500);
        let (back, _) = roundtrip(&Grib2::auto(), &data, layout);
        assert!(back.iter().all(|&v| v == 1.0e35));
    }

    #[test]
    fn constant_level() {
        let data = vec![42.0f32; 1000];
        let layout = Layout::linear(1000);
        let (back, n) = roundtrip(&Grib2::auto(), &data, layout);
        for &v in &back {
            assert!((v - 42.0).abs() < 1e-3);
        }
        assert!(n < 1000, "constant field should compress to almost nothing: {n}");
    }

    #[test]
    fn large_range_lognormal_data_quantizes_coarsely() {
        // The paper's CCN3 observation: with magnitude-based D, a huge
        // range forces coarse *relative* quantization of small values.
        let (data, layout) = noisy_field(4096);
        let codec = Grib2::auto();
        let (back, _) = roundtrip(&codec, &data, layout);
        let mut worst_rel: f64 = 0.0;
        for (&a, &b) in data.iter().zip(&back) {
            if a.abs() > 0.0 {
                worst_rel = worst_rel.max(((a as f64 - b as f64) / a as f64).abs());
            }
        }
        // Small values get large relative errors — the failure mode GRIB2
        // shows on CCN3 in Figures 2-4.
        assert!(worst_rel > 1e-3, "expected coarse relative error, got {worst_rel}");
    }

    #[test]
    fn negative_values_handled() {
        let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin() * 50.0 - 10.0).collect();
        let layout = Layout::linear(2048);
        let (back, _) = roundtrip(&Grib2::fixed(2), &data, layout);
        for (&a, &b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= 0.005 + 1e-4);
        }
    }

    #[test]
    fn multi_level_fields() {
        let (data, layout) = smooth_field(1500, 4);
        let (back, _) = roundtrip(&Grib2::auto(), &data, layout);
        assert_eq!(back.len(), data.len());
    }

    #[test]
    fn corrupt_stream_is_error() {
        let (data, layout) = smooth_field(1000, 1);
        let codec = Grib2::auto();
        let bytes = codec.compress(&data, layout);
        assert!(codec.decompress(&bytes[..4], layout).is_err());
    }

    #[test]
    fn complex_packing_roundtrips_with_same_bound() {
        let (data, layout) = smooth_field(3000, 2);
        for d in [1i32, 2] {
            let codec = Grib2::fixed(d).with_packing(Packing::ComplexDiff);
            let (back, _) = roundtrip(&codec, &data, layout);
            let bound = 0.5 * 10f64.powi(-d) + 1e-4;
            for (&a, &b) in data.iter().zip(&back) {
                assert!((a as f64 - b as f64).abs() <= bound, "D={d}: {a} -> {b}");
            }
        }
    }

    #[test]
    fn complex_packing_handles_specials_and_constants() {
        let mut data = vec![7.5f32; 800];
        for i in (0..800).step_by(9) {
            data[i] = 1.0e35;
        }
        let layout = Layout::linear(800);
        let codec = Grib2::auto().with_packing(Packing::ComplexDiff);
        let (back, _) = roundtrip(&codec, &data, layout);
        for (&a, &b) in data.iter().zip(&back) {
            if a == 1.0e35 {
                assert_eq!(b, 1.0e35);
            } else {
                assert!((a - b).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn packing_modes_both_compress_smooth_data() {
        let (data, layout) = smooth_field(8192, 1);
        let j2k = Grib2::auto().compress(&data, layout).len();
        let diff = Grib2::auto().with_packing(Packing::ComplexDiff).compress(&data, layout).len();
        let raw = data.len() * 4;
        assert!(j2k < raw / 2, "j2k CR {}", j2k as f64 / raw as f64);
        assert!(diff < raw / 2, "diff CR {}", diff as f64 / raw as f64);
    }

    #[test]
    fn properties_match_table1() {
        let p = Grib2::auto().properties();
        assert!(!p.lossless_mode);
        assert!(p.special_values, "GRIB2 is the only method with a bitmap");
        assert!(p.freely_available);
        assert!(!p.fixed_quality);
        assert!(!p.fixed_cr);
        assert!(!p.bits_32_and_64);
    }
}
