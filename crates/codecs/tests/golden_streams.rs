//! Golden-stream pins: the encoded byte format must not drift.
//!
//! Every hash below was captured from the pre-kernel-overhaul
//! implementation (u8-accumulator bit I/O, prefix-doubling BWT,
//! comparator-sort ISABELA, whole-level chunk partition). The rewritten
//! kernels must reproduce these streams byte-for-byte: the bit I/O
//! rewrite, the SA-IS suffix sort, and the ISABELA scratch/radix-sort
//! changes are all required to be format-preserving, and pre-overhaul
//! *multi-chunk* streams (whole-level partition) must still decode even
//! though the encoder now partitions within levels.
//!
//! Regenerate (only after an intentional format change) with:
//! `GOLDEN_DUMP=1 cargo test -p cc-codecs --test golden_streams -- --nocapture`

use cc_codecs::chunked::{compress_chunked, decompress_chunked};
use cc_codecs::{ErrorBound, Layout, Variant};

/// FNV-1a 64-bit over the full stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic synthetic field shared with the determinism suite:
/// smooth climate-like base plus small structured noise.
fn field(layout: Layout) -> Vec<f32> {
    let mut data = Vec::with_capacity(layout.len());
    for lev in 0..layout.nlev {
        for p in 0..layout.npts {
            let x = p as f32 / layout.npts as f32;
            data.push(
                250.0
                    + 40.0 * (7.1 * x).sin()
                    + 3.0 * (53.0 * x + lev as f32 * 0.7).cos()
                    + 0.05 * ((p * 37 + lev * 11) % 97) as f32,
            );
        }
    }
    data
}

/// The 11 variants whose stream formats are pinned: the nine paper
/// configurations plus the two lossless fallbacks.
fn all_variants() -> Vec<Variant> {
    let mut vs = Variant::paper_set();
    vs.push(Variant::NetCdf4);
    vs.push(Variant::Fpzip { bits: 32 });
    vs
}

/// Single-chunk 2-D field: the chunked stream is the plain codec stream.
const LAYOUT_2D: Layout = Layout { nlev: 1, npts: 40_000, rows: 200, cols: 200 };
/// Single-chunk 3-D field (two levels grouped into one chunk).
const LAYOUT_3D: Layout = Layout { nlev: 2, npts: 9_000, rows: 95, cols: 95 };

/// Captured single-chunk stream hashes: (variant name, 2-D hash, 3-D hash).
const GOLDEN_SINGLE: &[(&str, u64, u64)] = &[
    ("GRIB2", 0xfec73f6cbc18904b, 0xda26a4f1869ee9e1),
    ("APAX-2", 0x37eb6b240fc5fb46, 0x44166f74bb0da1f1),
    ("APAX-4", 0x5ebd58095555c739, 0x62f3a21af3143ba5),
    ("APAX-5", 0xc954cb1ebe3acd45, 0x401de3470f585a85),
    ("fpzip-24", 0x6dd29906ef2d21f6, 0x22c9f2ba4b372d12),
    ("fpzip-16", 0xd58b37824426569b, 0xf4335ff2eb3413a0),
    ("ISA-0.1", 0x600064bef82a58e0, 0x2decc8ed7bbb7ce7),
    ("ISA-0.5", 0x0448ef17a6e4cb37, 0x70e5a2824cc0943b),
    ("ISA-1.0", 0x0448ef17a6e4cb37, 0x70e5a2824cc0943b),
    ("NetCDF-4", 0x1af8199da6a94d46, 0x48daf263fb4599ef),
    ("fpzip-32", 0xfcde143023828f4e, 0x04e48db21dbdf643),
];

#[test]
fn single_chunk_streams_are_pinned() {
    let data_2d = field(LAYOUT_2D);
    let data_3d = field(LAYOUT_3D);
    let mut dump = String::new();
    for v in all_variants() {
        let codec = v.codec();
        let name = if matches!(v, Variant::Fpzip { bits: 32 }) {
            "fpzip-32".to_string()
        } else {
            v.name()
        };
        let h2 = fnv1a(&compress_chunked(codec.as_ref(), &data_2d, LAYOUT_2D, 1));
        let h3 = fnv1a(&compress_chunked(codec.as_ref(), &data_3d, LAYOUT_3D, 1));
        if std::env::var("GOLDEN_DUMP").is_ok() {
            dump.push_str(&format!("    (\"{name}\", {h2:#018x}, {h3:#018x}),\n"));
            continue;
        }
        let (_, g2, g3) = GOLDEN_SINGLE
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("no golden entry for {name}"));
        assert_eq!(h2, *g2, "{name}: 2-D single-chunk stream bytes drifted");
        assert_eq!(h3, *g3, "{name}: 3-D single-chunk stream bytes drifted");
    }
    if !dump.is_empty() {
        println!("const GOLDEN_SINGLE: &[(&str, u64, u64)] = &[\n{dump}];");
    }
}

/// The SZ variants whose stream formats are pinned: two rungs of the
/// relative-bound tuning ladder plus an absolute bound.
fn sz_variants() -> Vec<Variant> {
    vec![
        Variant::Sz { bound: ErrorBound::Rel(1e-3) },
        Variant::Sz { bound: ErrorBound::Rel(1e-5) },
        Variant::Sz { bound: ErrorBound::Abs(1e-2) },
    ]
}

/// Captured SZ single-chunk stream hashes: (variant name, 2-D, 3-D).
const GOLDEN_SZ: &[(&str, u64, u64)] = &[
    ("SZ-rel-1e-3", 0x45842488f8866edd, 0x985d973b77cc0d5a),
    ("SZ-rel-1e-5", 0xb16a987feae6fa87, 0x22dc9f06a7dbf5af),
    ("SZ-abs-1e-2", 0xf31b0b5a69278380, 0xfdfa064ce12b6431),
];

#[test]
fn sz_single_chunk_streams_are_pinned() {
    let data_2d = field(LAYOUT_2D);
    let data_3d = field(LAYOUT_3D);
    let mut dump = String::new();
    for v in sz_variants() {
        let codec = v.codec();
        let name = v.name();
        let h2 = fnv1a(&compress_chunked(codec.as_ref(), &data_2d, LAYOUT_2D, 1));
        let h3 = fnv1a(&compress_chunked(codec.as_ref(), &data_3d, LAYOUT_3D, 1));
        if std::env::var("GOLDEN_DUMP").is_ok() {
            dump.push_str(&format!("    (\"{name}\", {h2:#018x}, {h3:#018x}),\n"));
            continue;
        }
        let (_, g2, g3) = GOLDEN_SZ
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("no golden entry for {name}"));
        assert_eq!(h2, *g2, "{name}: 2-D single-chunk stream bytes drifted");
        assert_eq!(h3, *g3, "{name}: 3-D single-chunk stream bytes drifted");
    }
    if !dump.is_empty() {
        println!("const GOLDEN_SZ: &[(&str, u64, u64)] = &[\n{dump}];");
    }
}

/// Multi-chunk field on which the pre-overhaul (whole-level) partition and
/// the sub-level partition disagree: npts > TARGET_CHUNK_ELEMS, so the old
/// plan yields one chunk per level (2) and the new plan splits within each
/// level.
const LAYOUT_LEGACY: Layout = Layout { nlev: 2, npts: 100_000, rows: 317, cols: 317 };

/// Hash of the pre-overhaul `compress_chunked` stream for
/// [`LAYOUT_LEGACY`] (whole-level partition, 2 frames), and the hashes of
/// the two per-level payloads it framed, per variant. Pinned so the
/// legacy-format decode path can be exercised against byte-exact
/// pre-overhaul streams rebuilt from today's (format-identical) per-chunk
/// encoder.
const GOLDEN_LEGACY: &[(&str, u64, u64, u64)] = &[
    ("fpzip-24", 0x61201deb6ff4fb8c, 0x0cb2a57411bbb714, 0x44026fd28359707c),
    ("ISA-0.5", 0x8e5f1fc3370fec0d, 0x8bd8970fbe0c9c27, 0xb9c2655ba9e33d5e),
    ("NetCDF-4", 0x9b4a61aaa889c131, 0x56cbe47303f5d8fe, 0xa15fd01c3e30c761),
];

/// Rebuild the pre-overhaul chunked framing (whole-level partition) for a
/// two-level field from per-level plain streams.
fn build_legacy_stream(payloads: &[Vec<u8>], layout: Layout) -> Vec<u8> {
    let mut out = Vec::new();
    // 16-byte layout echo, same format as cc_codecs::write_layout_header.
    out.extend_from_slice(&(layout.nlev as u32).to_le_bytes());
    out.extend_from_slice(&(layout.npts as u32).to_le_bytes());
    out.extend_from_slice(&(layout.rows as u32).to_le_bytes());
    out.extend_from_slice(&(layout.cols as u32).to_le_bytes());
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

#[test]
fn legacy_whole_level_streams_still_decode() {
    let data = field(LAYOUT_LEGACY);
    let per_level = Layout { nlev: 1, ..LAYOUT_LEGACY };
    let mut dump = String::new();
    for (name, variant) in [
        ("fpzip-24", Variant::Fpzip { bits: 24 }),
        ("ISA-0.5", Variant::Isabela { rel_err: 0.005 }),
        ("NetCDF-4", Variant::NetCdf4),
    ] {
        let codec = variant.codec();
        // Per-level plain streams — byte-identical before and after the
        // overhaul (pinned by the payload hashes below).
        let lev0 = codec.compress(&data[..LAYOUT_LEGACY.npts], per_level);
        let lev1 = codec.compress(&data[LAYOUT_LEGACY.npts..], per_level);
        let legacy = build_legacy_stream(&[lev0.clone(), lev1.clone()], LAYOUT_LEGACY);
        if std::env::var("GOLDEN_DUMP").is_ok() {
            dump.push_str(&format!(
                "    (\"{name}\", {:#018x}, {:#018x}, {:#018x}),\n",
                fnv1a(&legacy),
                fnv1a(&lev0),
                fnv1a(&lev1)
            ));
            continue;
        }
        let (_, gs, g0, g1) = GOLDEN_LEGACY
            .iter()
            .find(|(n, ..)| *n == name)
            .unwrap_or_else(|| panic!("no golden entry for {name}"));
        assert_eq!(fnv1a(&lev0), *g0, "{name}: level-0 payload bytes drifted");
        assert_eq!(fnv1a(&lev1), *g1, "{name}: level-1 payload bytes drifted");
        assert_eq!(fnv1a(&legacy), *gs, "{name}: rebuilt legacy stream differs from pre-overhaul bytes");
        // The pre-overhaul stream must still decode exactly, even though
        // the current encoder would partition this field differently.
        let back = decompress_chunked(codec.as_ref(), &legacy, LAYOUT_LEGACY, 2).unwrap();
        assert_eq!(back.len(), data.len(), "{name}: legacy stream decoded to wrong length");
        if matches!(variant, Variant::NetCdf4) {
            assert_eq!(back, data, "{name}: lossless legacy decode mismatch");
        }
    }
    if !dump.is_empty() {
        println!("const GOLDEN_LEGACY: &[(&str, u64, u64, u64)] = &[\n{dump}];");
    }
}

#[test]
fn current_encoder_roundtrips_legacy_layout() {
    // Sanity companion to the legacy pin: whatever partition the current
    // encoder picks for the divergence layout, its own streams roundtrip
    // at several worker counts with identical bytes.
    let data = field(LAYOUT_LEGACY);
    let codec = Variant::Fpzip { bits: 24 }.codec();
    let seq = compress_chunked(codec.as_ref(), &data, LAYOUT_LEGACY, 1);
    for workers in [2, 8] {
        let par = compress_chunked(codec.as_ref(), &data, LAYOUT_LEGACY, workers);
        assert_eq!(seq, par, "workers={workers} bytes differ from sequential");
    }
    let back = decompress_chunked(codec.as_ref(), &seq, LAYOUT_LEGACY, 4).unwrap();
    assert_eq!(back.len(), data.len());
}
