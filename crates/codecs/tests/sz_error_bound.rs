//! Property suite for the SZ error-bound guarantee.
//!
//! The contract: for every field and every bound, each decoded element
//! satisfies `|x' − x| ≤ e` (absolute mode) or `|x' − x| ≤ r·(max −
//! min)` over the stream's finite values (relative mode); non-finite
//! inputs survive bit-exactly. Fields deliberately include subnormals,
//! negative zeros, constant runs, and values spanning ~70 orders of
//! magnitude. A second group asserts decode *totality*: truncated and
//! mutated streams return `Ok`/`Err`, never panic.

use cc_codecs::sz::Sz;
use cc_codecs::{Codec, ErrorBound, Layout, Variant};
use proptest::prelude::*;

/// Climate-plausible values plus the nasty corners: subnormals, signed
/// zeros, and power-of-ten magnitudes from 1e-35 to 1e34.
fn wild_field(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    let decades: Vec<f32> = (-35i32..35).map(|ex| 10f32.powi(ex)).collect();
    let neg_decades: Vec<f32> = decades.iter().map(|v| -v).collect();
    prop::collection::vec(
        prop_oneof![
            6 => -1.0e6f32..1.0e6f32,
            2 => prop::sample::select(decades),
            1 => prop::sample::select(neg_decades),
            1 => prop::sample::select(vec![
                0.0f32,
                -0.0,
                1e-42,
                -1e-42,
                f32::MIN_POSITIVE,
                -f32::MIN_POSITIVE,
            ]),
        ],
        1..max_len,
    )
}

/// Bounds swept by the properties, absolute and relative.
fn bound_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(1.0f64),
        Just(1e-2),
        Just(1e-4),
        Just(1e-6),
        1e-6f64..1.0f64,
    ]
}

fn assert_abs_bound(data: &[f32], back: &[f32], e: f64) {
    assert_eq!(back.len(), data.len());
    for (i, (&a, &b)) in data.iter().zip(back).enumerate() {
        if a.is_finite() {
            let err = (b as f64 - a as f64).abs();
            assert!(err <= e, "|{b} - {a}| = {err} > {e} at {i}");
        } else {
            assert_eq!(b.to_bits(), a.to_bits(), "non-finite changed at {i}");
        }
    }
}

/// The effective bound the relative mode promises for this data.
fn rel_effective(data: &[f32], r: f64) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        if v.is_finite() {
            lo = lo.min(v as f64);
            hi = hi.max(v as f64);
        }
    }
    if hi <= lo {
        0.0 // degenerate: codec stores exactly
    } else {
        r * (hi - lo)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn abs_bound_holds_on_any_field(data in wild_field(1024), e in bound_strategy()) {
        let codec = Sz::abs(e);
        let layout = Layout::linear(data.len());
        let stream = codec.compress(&data, layout);
        let back = codec.decompress(&stream, layout).unwrap();
        assert_abs_bound(&data, &back, e);
    }

    #[test]
    fn rel_bound_holds_on_any_field(data in wild_field(1024), r in bound_strategy()) {
        let codec = Sz::rel(r);
        let layout = Layout::linear(data.len());
        let stream = codec.compress(&data, layout);
        let back = codec.decompress(&stream, layout).unwrap();
        let e = rel_effective(&data, r);
        if e == 0.0 {
            // Constant (or single-value) fields must reconstruct exactly.
            prop_assert_eq!(
                back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        } else {
            assert_abs_bound(&data, &back, e);
        }
    }

    #[test]
    fn constant_fields_reconstruct_exactly(v in -1.0e30f32..1.0e30f32, n in 1usize..2000) {
        let data = vec![v; n];
        let layout = Layout::linear(n);
        // Relative mode: zero range forces the exact fallback.
        let codec = Sz::rel(1e-3);
        let stream = codec.compress(&data, layout);
        let back = codec.decompress(&stream, layout).unwrap();
        prop_assert!(back.iter().zip(&data).all(|(b, a)| b.to_bits() == a.to_bits()));
        // Absolute mode: the tight bound still holds on constants of any
        // magnitude (huge values take the escape path and come back exact).
        let codec = Sz::abs(1e-6);
        let stream = codec.compress(&data, layout);
        let back = codec.decompress(&stream, layout).unwrap();
        assert_abs_bound(&data, &back, 1e-6);
    }

    #[test]
    fn guarded_variant_honors_bound_and_restores_fills(
        data in wild_field(1024),
        fill_every in 5usize..50,
    ) {
        let mut data = data;
        for i in (0..data.len()).step_by(fill_every) {
            data[i] = 1.0e35;
        }
        let e = 1e-2;
        let v = Variant::Sz { bound: ErrorBound::Abs(e) };
        let codec = v.codec();
        let layout = Layout::linear(data.len());
        let stream = codec.compress(&data, layout);
        let back = codec.decompress(&stream, layout).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            if a == 1.0e35 {
                prop_assert_eq!(b, 1.0e35, "fill lost at {}", i);
            } else if a.is_finite() && a.abs() < 1.0e30 {
                let err = (b as f64 - a as f64).abs();
                prop_assert!(err <= e, "|{} - {}| = {} > {} at {}", b, a, err, e, i);
            }
        }
    }

    #[test]
    fn decode_is_total_on_truncated_streams(
        data in wild_field(512),
        cut_frac in 0.0f64..1.0,
    ) {
        let codec = Sz::abs(1e-3);
        let layout = Layout::linear(data.len());
        let stream = codec.compress(&data, layout);
        let cut = (stream.len() as f64 * cut_frac) as usize;
        // Must return Ok or Err, never panic; a proper prefix is Err.
        let out = codec.decompress(&stream[..cut.min(stream.len())], layout);
        if cut < stream.len() {
            prop_assert!(out.is_err(), "truncated stream (cut {}) decoded Ok", cut);
        }
    }

    #[test]
    fn decode_is_total_on_mutated_streams(
        data in wild_field(512),
        edits in prop::collection::vec((0usize..100_000, 1u8..=255), 1..8),
    ) {
        let codec = Sz::rel(1e-3);
        let layout = Layout::linear(data.len());
        let mut stream = codec.compress(&data, layout);
        for (at, x) in edits {
            let len = stream.len();
            stream[at % len] ^= x;
        }
        // Ok (damage landed benignly) or Err — never a panic, and any Ok
        // output still has the layout's length.
        if let Ok(out) = codec.decompress(&stream, layout) {
            prop_assert_eq!(out.len(), layout.len());
        }
    }
}

/// Non-proptest companion: the bound survives the multi-chunk parallel
/// pipeline (each chunk's value range is a subset of the global range,
/// so per-chunk relative bounds are tighter than the global one).
#[test]
fn rel_bound_holds_through_chunked_pipeline() {
    use cc_codecs::chunked::{compress_chunked, decompress_chunked, plan};
    let layout = Layout { nlev: 4, npts: 30_000, rows: 174, cols: 174 };
    assert!(plan(layout).len() >= 2, "field must span chunks");
    let mut data = Vec::with_capacity(layout.len());
    for lev in 0..layout.nlev {
        for p in 0..layout.npts {
            let x = p as f32 / layout.npts as f32;
            data.push(200.0 + 80.0 * (9.0 * x).sin() + lev as f32 * 12.0
                + 0.02 * ((p * 13 + lev * 7) % 89) as f32);
        }
    }
    let r = 1e-4;
    let e = rel_effective(&data, r);
    let codec = Variant::Sz { bound: ErrorBound::Rel(r) }.codec();
    for workers in [1, 2, 8] {
        let stream = compress_chunked(codec.as_ref(), &data, layout, workers);
        let back = decompress_chunked(codec.as_ref(), &stream, layout, workers).unwrap();
        assert_eq!(back.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            let err = (b as f64 - a as f64).abs();
            assert!(err <= e, "workers={workers}: |{b} - {a}| = {err} > {e} at {i}");
        }
    }
}
