//! Chunk-boundary property tests for the chunked codec path.
//!
//! The partition boundary cases that historically break block codecs:
//! field lengths exactly on / one past / one short of a chunk edge,
//! fields smaller than the worker count, and single-point fields. For
//! each: lossless roundtrip exactness, parallel/sequential byte
//! identity, and totality of decode over mutated streams.

use cc_codecs::chunked::{compress_chunked, decompress_chunked, plan, TARGET_CHUNK_ELEMS};
use cc_codecs::{Layout, Variant};
use proptest::prelude::*;

/// The boundary-straddling field lengths: len % chunk ∈ {0, 1, chunk-1}
/// around one and two chunks, plus degenerate sizes.
fn boundary_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2usize),
        Just(7usize), // fewer points than the 8-worker sweep
        Just(TARGET_CHUNK_ELEMS - 1),
        Just(TARGET_CHUNK_ELEMS),
        Just(TARGET_CHUNK_ELEMS + 1),
        Just(2 * TARGET_CHUNK_ELEMS - 1),
        Just(2 * TARGET_CHUNK_ELEMS),
        Just(2 * TARGET_CHUNK_ELEMS + 1),
    ]
}

/// Deterministic pseudo-random field from a seed (proptest shrinks the
/// seed, not 64Ki floats).
fn gen_field(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Map to a well-behaved climate-ish range.
            200.0 + 100.0 * ((state >> 33) as f32 / (1u64 << 31) as f32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lossless_roundtrip_at_boundaries(len in boundary_len(), seed in 0u64..1000, workers in 1usize..9) {
        let layout = Layout::linear(len);
        let data = gen_field(len, seed);
        for variant in [Variant::Fpzip { bits: 32 }, Variant::NetCdf4] {
            let codec = variant.codec();
            let bytes = compress_chunked(codec.as_ref(), &data, layout, workers);
            let back = decompress_chunked(codec.as_ref(), &bytes, layout, workers).unwrap();
            prop_assert_eq!(back.len(), data.len());
            for (a, b) in data.iter().zip(&back) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn parallel_bytes_equal_sequential_at_boundaries(len in boundary_len(), seed in 0u64..1000) {
        let layout = Layout::linear(len);
        let data = gen_field(len, seed);
        for variant in [
            Variant::Apax { rate: 4.0 },
            Variant::Isabela { rel_err: 0.005 },
            Variant::Fpzip { bits: 24 },
        ] {
            let codec = variant.codec();
            let seq = compress_chunked(codec.as_ref(), &data, layout, 1);
            let par = compress_chunked(codec.as_ref(), &data, layout, 8);
            prop_assert_eq!(&seq, &par, "{} parallel != sequential at len {}", variant.name(), len);
            // Lossy decode still restores the exact element count.
            let back = decompress_chunked(codec.as_ref(), &seq, layout, 3).unwrap();
            prop_assert_eq!(back.len(), len);
        }
    }

    #[test]
    fn decode_is_total_over_mutated_streams(
        len in prop_oneof![Just(1usize), Just(500), Just(TARGET_CHUNK_ELEMS + 1)],
        seed in 0u64..1000,
        flip_at in 0usize..10_000,
        flip_mask in 1u8..=255,
    ) {
        let layout = Layout::linear(len);
        let data = gen_field(len, seed);
        let codec = Variant::NetCdf4.codec();
        let mut bytes = compress_chunked(codec.as_ref(), &data, layout, 2);
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_mask;
        // Must return Ok or Err — never panic, never hang. A flip that
        // lands in a chunk body may still decode (deflate stored blocks);
        // the framing and length checks bound everything else.
        let _ = decompress_chunked(codec.as_ref(), &bytes, layout, 2);
    }

    #[test]
    fn truncation_is_total(
        len in prop_oneof![
            Just(TARGET_CHUNK_ELEMS + 1),
            Just(2 * TARGET_CHUNK_ELEMS),
            Just(2 * TARGET_CHUNK_ELEMS + 1),
        ],
        seed in 0u64..1000,
        keep_permille in 0usize..1000,
    ) {
        let layout = Layout::linear(len);
        let data = gen_field(len, seed);
        let codec = Variant::Fpzip { bits: 24 }.codec();
        let bytes = compress_chunked(codec.as_ref(), &data, layout, 2);
        prop_assert!(plan(layout).len() >= 2);
        let keep = bytes.len() * keep_permille / 1000;
        // Multi-chunk framing rejects every proper prefix cleanly.
        prop_assert!(decompress_chunked(codec.as_ref(), &bytes[..keep], layout, 2).is_err());
    }
}

#[test]
fn single_point_and_tiny_fields_roundtrip() {
    for len in [1usize, 2, 3, 7] {
        let layout = Layout::linear(len);
        let data = gen_field(len, 42);
        assert_eq!(plan(layout).len(), 1, "tiny field must be one chunk");
        for workers in [1usize, 2, 8] {
            let codec = Variant::NetCdf4.codec();
            let bytes = compress_chunked(codec.as_ref(), &data, layout, workers);
            let back = decompress_chunked(codec.as_ref(), &bytes, layout, workers).unwrap();
            assert_eq!(back, data, "len {len} workers {workers}");
        }
    }
}
