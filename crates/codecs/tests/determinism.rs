//! Determinism suite for the chunked parallel codec path.
//!
//! The contract under test: for every codec the paper evaluates (plus
//! the lossless baselines), the bytes produced by `compress_chunked` and
//! the floats produced by `decompress_chunked` are **bit-identical** at
//! every worker count — parallelism is a pure throughput knob, never an
//! output knob. Both a 3-D (level-major) and a 2-D (row-embedded) layout
//! are exercised, each large enough to span multiple chunks.

use cc_codecs::chunked::{compress_chunked, decompress_chunked, plan};
use cc_codecs::{ErrorBound, Layout, Variant};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Every variant the determinism guarantee must hold for: the paper's
/// nine lossy configurations, the two lossless baselines, and the SZ
/// error-bounded extension (absolute and relative bounds).
fn all_variants() -> Vec<Variant> {
    let mut v = Variant::paper_set();
    v.push(Variant::NetCdf4);
    v.push(Variant::Fpzip { bits: 32 });
    v.push(Variant::Sz { bound: ErrorBound::Abs(1e-2) });
    v.push(Variant::Sz { bound: ErrorBound::Rel(1e-3) });
    v.push(Variant::Sz { bound: ErrorBound::Rel(1e-5) });
    v
}

/// A 3-D field (6 levels) and a 2-D field, both spanning >= 2 chunks.
fn layouts() -> Vec<Layout> {
    let three_d = Layout { nlev: 6, npts: 20_000, rows: 142, cols: 142 };
    let two_d = Layout::linear(70_000);
    vec![three_d, two_d]
}

/// Deterministic climate-like field: smooth waves plus small dither, so
/// lossy codecs exercise their real quantization paths.
fn field(layout: Layout) -> Vec<f32> {
    let mut data = Vec::with_capacity(layout.len());
    for lev in 0..layout.nlev {
        for p in 0..layout.npts {
            let x = p as f32 / layout.npts as f32;
            data.push(
                250.0
                    + 40.0 * (7.1 * x).sin()
                    + 3.0 * (53.0 * x + lev as f32 * 0.7).cos()
                    + 0.05 * ((p * 37 + lev * 11) % 97) as f32,
            );
        }
    }
    data
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn layouts_span_multiple_chunks() {
    for layout in layouts() {
        assert!(
            plan(layout).len() >= 2,
            "test layout {layout:?} must split into >= 2 chunks"
        );
    }
}

#[test]
fn encode_bytes_bit_identical_across_workers() {
    for layout in layouts() {
        let data = field(layout);
        for variant in all_variants() {
            let codec = variant.codec();
            let reference = compress_chunked(codec.as_ref(), &data, layout, 1);
            for w in WORKER_COUNTS {
                let bytes = compress_chunked(codec.as_ref(), &data, layout, w);
                assert_eq!(
                    bytes,
                    reference,
                    "{}: encode at {w} workers differs from sequential ({layout:?})",
                    variant.name()
                );
            }
        }
    }
}

#[test]
fn decode_floats_bit_identical_across_workers() {
    for layout in layouts() {
        let data = field(layout);
        for variant in all_variants() {
            let codec = variant.codec();
            let stream = compress_chunked(codec.as_ref(), &data, layout, 2);
            let reference =
                decompress_chunked(codec.as_ref(), &stream, layout, 1).expect("own stream");
            assert_eq!(reference.len(), data.len());
            for w in WORKER_COUNTS {
                let decoded =
                    decompress_chunked(codec.as_ref(), &stream, layout, w).expect("own stream");
                assert_eq!(
                    bits(&decoded),
                    bits(&reference),
                    "{}: decode at {w} workers differs from sequential ({layout:?})",
                    variant.name()
                );
            }
        }
    }
}

#[test]
fn stream_is_decoder_worker_agnostic() {
    // A stream encoded at any worker count decodes identically at any
    // other: encode at 8, decode at 1/2/8, all equal the unchunked-path
    // expectation of the layout length.
    let layout = Layout { nlev: 6, npts: 20_000, rows: 142, cols: 142 };
    let data = field(layout);
    for variant in [Variant::Fpzip { bits: 32 }, Variant::NetCdf4] {
        let codec = variant.codec();
        let stream = compress_chunked(codec.as_ref(), &data, layout, 8);
        for w in WORKER_COUNTS {
            let decoded =
                decompress_chunked(codec.as_ref(), &stream, layout, w).expect("own stream");
            // Lossless variants must restore the input exactly.
            assert_eq!(
                bits(&decoded),
                bits(&data),
                "{}: lossless roundtrip at {w} workers",
                variant.name()
            );
        }
    }
}
