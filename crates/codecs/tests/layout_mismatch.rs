//! Wrong-layout regression tests: decoding any paper variant's stream
//! under a layout other than the one it was compressed for must return
//! `CodecError::LayoutMismatch` — not garbage data and not a panic.

use cc_codecs::{try_roundtrip, CodecError, Layout, Variant};

fn smooth_field(npts: usize, nlev: usize) -> (Vec<f32>, Layout) {
    let linear = Layout::linear(npts);
    let layout = Layout { nlev, npts, rows: linear.rows, cols: linear.cols };
    let mut data = Vec::with_capacity(layout.len());
    for lev in 0..nlev {
        for p in 0..npts {
            let x = p as f32 / npts as f32;
            data.push(250.0 + 20.0 * (7.1 * x).sin() + lev as f32);
        }
    }
    (data, layout)
}

fn all_variants() -> Vec<Variant> {
    let mut v = Variant::paper_set();
    v.push(Variant::NetCdf4);
    v
}

#[test]
fn different_length_layout_is_layout_mismatch() {
    let (data, layout) = smooth_field(1500, 2);
    for variant in all_variants() {
        let codec = variant.codec();
        let stream = codec.compress(&data, layout);
        let wrong = Layout::linear(data.len() + 128);
        assert!(
            matches!(codec.decompress(&stream, wrong), Err(CodecError::LayoutMismatch)),
            "{} must reject a wrong-length layout",
            variant.name()
        );
    }
}

#[test]
fn different_shape_same_length_is_layout_mismatch() {
    // Same number of values, different (nlev, npts) split: without a
    // layout echo this decodes to silently-transposed garbage.
    let (data, layout) = smooth_field(1500, 2);
    for variant in Variant::paper_set() {
        let codec = variant.codec();
        let stream = codec.compress(&data, layout);
        let linear = Layout::linear(3000);
        let wrong = Layout { nlev: 1, npts: 3000, rows: linear.rows, cols: linear.cols };
        assert_eq!(wrong.len(), layout.len());
        assert!(
            matches!(codec.decompress(&stream, wrong), Err(CodecError::LayoutMismatch)),
            "{} must reject a reshaped layout",
            variant.name()
        );
    }
}

#[test]
fn swapped_embedding_is_layout_mismatch() {
    // 1300 points embed as 36×37, so swapping rows/cols actually changes
    // the layout (a square embedding would make this test vacuous).
    let (data, layout) = smooth_field(1300, 2);
    assert_ne!(layout.rows, layout.cols, "need a non-square embedding");
    for variant in Variant::paper_set() {
        let codec = variant.codec();
        let stream = codec.compress(&data, layout);
        let wrong = Layout { rows: layout.cols, cols: layout.rows, ..layout };
        assert!(
            matches!(codec.decompress(&stream, wrong), Err(CodecError::LayoutMismatch)),
            "{} must reject a transposed embedding",
            variant.name()
        );
    }
}

#[test]
fn matching_layout_still_roundtrips() {
    let (data, layout) = smooth_field(1500, 2);
    for variant in all_variants() {
        let codec = variant.codec();
        let (back, n) = try_roundtrip(codec.as_ref(), &data, layout)
            .unwrap_or_else(|e| panic!("{}: {e}", variant.name()));
        assert_eq!(back.len(), data.len(), "{}", variant.name());
        assert!(n > 0);
    }
}

#[test]
fn try_roundtrip_surfaces_decode_errors() {
    // A codec pair mismatch (stream from one precision decoded by
    // another) must come back as Err, not a panic.
    use cc_codecs::{fpzip::Fpzip, Codec};
    let (data, layout) = smooth_field(500, 1);
    let bytes = Fpzip::new(16).compress(&data, layout);
    assert!(Fpzip::new(24).decompress(&bytes, layout).is_err());
    assert!(try_roundtrip(&Fpzip::new(16), &data, layout).is_ok());
}
