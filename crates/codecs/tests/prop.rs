//! Property tests for the four lossy codec families: error bounds, exact
//! rates, special-value preservation, and wavelet invertibility under
//! arbitrary inputs.

use cc_codecs::apax::Apax;
use cc_codecs::fpzip::Fpzip;
use cc_codecs::grib2::Grib2;
use cc_codecs::guard::SpecialValueGuard;
use cc_codecs::isabela::Isabela;
use cc_codecs::wavelet::{fwd53_2d, inv53_2d};
use cc_codecs::{Codec, Layout};
use proptest::prelude::*;

fn finite_field(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            6 => -1.0e5f32..1.0e5f32,
            2 => -1.0f32..1.0f32,
            1 => 1.0e-12f32..1.0e-8f32,
            1 => Just(0.0f32),
        ],
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fpzip_lossless_any_finite_field(data in finite_field(3000)) {
        let layout = Layout::linear(data.len());
        let codec = Fpzip::lossless();
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        for (a, b) in data.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fpzip_truncation_relative_error(data in finite_field(2000), bits in prop::sample::select(vec![16u8, 24])) {
        let layout = Layout::linear(data.len());
        let codec = Fpzip::new(bits);
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        let bound = 2f64.powi(32 - bits as i32 - 23);
        for (&a, &b) in data.iter().zip(&back) {
            let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-300)).abs();
            prop_assert!(rel <= bound, "{} -> {} (rel {})", a, b, rel);
        }
    }

    #[test]
    fn isabela_error_bound_any_field(data in finite_field(2500), pct in prop::sample::select(vec![0.001f64, 0.005, 0.01])) {
        let layout = Layout::linear(data.len());
        let codec = Isabela::new(pct);
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            let rel = ((a as f64 - b as f64) / (a as f64).abs().max(1e-30)).abs();
            prop_assert!(rel <= pct + 1e-9, "{} -> {} (rel {})", a, b, rel);
        }
    }

    #[test]
    fn apax_rate_is_exact_and_decodes(data in finite_field(4000), rate in prop::sample::select(vec![2.0f64, 4.0, 5.0, 6.0, 7.0])) {
        let layout = Layout::linear(data.len());
        let codec = Apax::fixed_rate(rate);
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        prop_assert_eq!(back.len(), data.len());
        // Full blocks hit the budget exactly; the trailing block has a floor.
        let full_blocks = data.len() / cc_codecs::apax::BLOCK;
        if full_blocks > 0 {
            let expect_full = (cc_codecs::apax::BLOCK as f64 * 32.0 / rate).floor() as usize;
            prop_assert!(bytes.len() * 8 >= full_blocks * expect_full);
        }
    }

    #[test]
    fn grib2_absolute_error_bound(data in finite_field(2000), d in -1i32..4) {
        let layout = Layout::linear(data.len());
        let codec = Grib2::fixed(d);
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        let bound = 0.5 * 10f64.powi(-d);
        for (&a, &b) in data.iter().zip(&back) {
            // f32 casts at 1e5 magnitudes cost a few ulps beyond the bound.
            let slack = (a.abs() as f64) * 1e-6 + 1e-6;
            prop_assert!(
                ((a as f64) - (b as f64)).abs() <= bound + slack,
                "D={} {} -> {}", d, a, b
            );
        }
    }

    #[test]
    fn guard_preserves_fill_positions(
        data in finite_field(2000),
        fills in prop::collection::vec(any::<prop::sample::Index>(), 0..64),
    ) {
        let mut data = data;
        for ix in &fills {
            let i = ix.index(data.len());
            data[i] = 1.0e35;
        }
        let codec = SpecialValueGuard::new(Apax::fixed_rate(4.0));
        let layout = Layout::linear(data.len());
        let bytes = codec.compress(&data, layout);
        let back = codec.decompress(&bytes, layout).unwrap();
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            if a == 1.0e35 {
                prop_assert_eq!(b, 1.0e35, "lost fill at {}", i);
            } else {
                prop_assert!(b.abs() < 1.0e30, "spurious fill at {}", i);
            }
        }
    }

    #[test]
    fn wavelet_2d_is_perfectly_invertible(
        rows in 1usize..40,
        cols in 1usize..40,
        levels in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let data: Vec<i64> = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as i64) - (1 << 23)
            })
            .collect();
        let mut t = data.clone();
        fwd53_2d(&mut t, rows, cols, levels);
        inv53_2d(&mut t, rows, cols, levels);
        prop_assert_eq!(t, data);
    }

    #[test]
    fn corrupt_streams_error_not_panic(
        data in finite_field(1200),
        corrupt_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let layout = Layout::linear(data.len());
        for variant in cc_codecs::Variant::paper_set() {
            let codec = variant.codec();
            let mut bytes = codec.compress(&data, layout);
            if bytes.is_empty() { continue; }
            let i = corrupt_at.index(bytes.len());
            bytes[i] ^= xor;
            // Must terminate without panicking; wrong data or Err both fine.
            let _ = codec.decompress(&bytes, layout);
        }
    }
}
