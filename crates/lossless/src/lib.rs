//! DEFLATE-class lossless compression, from scratch.
//!
//! The paper uses NetCDF-4's zlib compression as (a) the lossless baseline
//! characterizing each variable (Table 2's "CR" column), (b) the "NC" column
//! of Table 7, and (c) the lossless fallback inside the hybrid methods of
//! Section 5.4. No zlib binding is in the approved dependency set, so this
//! crate implements the whole stack:
//!
//! * [`bitio`] — LSB-first bit-level readers and writers (shared with the
//!   lossy codecs in `cc-codecs`).
//! * [`huffman`] — canonical Huffman coding with package-merge length
//!   limiting.
//! * [`lz77`] — hash-chain match finding over a 32 KiB window.
//! * [`deflate`] — a DEFLATE-like container: stored and dynamic-Huffman
//!   blocks over the LZ77 token stream (custom framing; we need
//!   self-interoperability, not zlib interoperability).
//! * [`mod@shuffle`] — the HDF5-style byte-transpose filter that makes IEEE
//!   floats far more compressible, applied before deflate exactly as
//!   NetCDF-4 does.
//!
//! The top-level convenience functions bundle the NetCDF-4 behaviour:
//! shuffle + deflate over raw little-endian float bytes.

pub mod bitio;
pub mod bwt;
pub mod deflate;
pub mod huffman;
pub mod lz77;
pub mod range;
pub mod shuffle;

pub use bwt::{bwt_compress, bwt_decompress};
pub use deflate::{compress, decompress, decompress_capped, Level};
pub use shuffle::{shuffle, unshuffle};

/// Error type for decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended before the stream was complete.
    UnexpectedEof,
    /// The stream contains an invalid code, length, or distance.
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            Error::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Compress a `f32` slice the way NetCDF-4 does: byte-shuffle then deflate.
pub fn compress_f32_shuffled(data: &[f32], level: Level) -> Vec<u8> {
    let _s = cc_obs::span("lossless.encode_f32");
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let shuffled = shuffle(&bytes, 4);
    compress(&shuffled, level)
}

/// Inverse of [`compress_f32_shuffled`].
pub fn decompress_f32_shuffled(data: &[u8]) -> Result<Vec<f32>, Error> {
    let _s = cc_obs::span("lossless.decode_f32");
    let shuffled = decompress(data)?;
    if shuffled.len() % 4 != 0 {
        return Err(Error::Corrupt("shuffled f32 payload not a multiple of 4"));
    }
    let bytes = unshuffle(&shuffled, 4);
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Compress a `f64` slice (restart-file path): byte-shuffle then deflate.
pub fn compress_f64_shuffled(data: &[f64], level: Level) -> Vec<u8> {
    let _s = cc_obs::span("lossless.encode_f64");
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let shuffled = shuffle(&bytes, 8);
    compress(&shuffled, level)
}

/// Inverse of [`compress_f64_shuffled`].
pub fn decompress_f64_shuffled(data: &[u8]) -> Result<Vec<f64>, Error> {
    let _s = cc_obs::span("lossless.decode_f64");
    let shuffled = decompress(data)?;
    if shuffled.len() % 8 != 0 {
        return Err(Error::Corrupt("shuffled f64 payload not a multiple of 8"));
    }
    let bytes = unshuffle(&shuffled, 8);
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_shuffled_roundtrip() {
        let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.1).sin() * 100.0).collect();
        let z = compress_f32_shuffled(&data, Level::Default);
        let back = decompress_f32_shuffled(&z).unwrap();
        assert_eq!(data, back);
        assert!(z.len() < data.len() * 4, "smooth data should compress");
    }

    #[test]
    fn f64_shuffled_roundtrip() {
        let data: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.01).cos()).collect();
        let z = compress_f64_shuffled(&data, Level::Default);
        let back = decompress_f64_shuffled(&z).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn decompress_garbage_is_error_not_panic() {
        let garbage = vec![0xABu8; 64];
        // Any outcome but a panic is acceptable; must not loop forever.
        let _ = decompress_f32_shuffled(&garbage);
    }
}
