//! HDF5-style byte shuffle filter.
//!
//! Transposes an array of `elem_size`-byte elements so that byte 0 of every
//! element comes first, then byte 1 of every element, and so on. For IEEE
//! floats this groups the (highly correlated) sign/exponent bytes together
//! and the (noisy) low-mantissa bytes together, dramatically improving the
//! downstream LZ/Huffman stage — the reason NetCDF-4 enables shuffle in
//! front of deflate.

/// Shuffle `data` as `elem_size`-byte elements. A trailing partial element
/// (if `data.len()` is not a multiple of `elem_size`) is passed through
/// unchanged at the end, matching HDF5's behaviour.
pub fn shuffle(data: &[u8], elem_size: usize) -> Vec<u8> {
    assert!(elem_size >= 1, "element size must be >= 1");
    if elem_size == 1 {
        return data.to_vec();
    }
    let n = data.len() / elem_size;
    let body = n * elem_size;
    let mut out = Vec::with_capacity(data.len());
    for b in 0..elem_size {
        for e in 0..n {
            out.push(data[e * elem_size + b]);
        }
    }
    out.extend_from_slice(&data[body..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(data: &[u8], elem_size: usize) -> Vec<u8> {
    assert!(elem_size >= 1, "element size must be >= 1");
    if elem_size == 1 {
        return data.to_vec();
    }
    let n = data.len() / elem_size;
    let body = n * elem_size;
    let mut out = vec![0u8; data.len()];
    let mut idx = 0usize;
    for b in 0..elem_size {
        for e in 0..n {
            out[e * elem_size + b] = data[idx];
            idx += 1;
        }
    }
    out[body..].copy_from_slice(&data[body..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_multiple() {
        let data: Vec<u8> = (0..64u8).collect();
        for es in [1usize, 2, 4, 8] {
            assert_eq!(unshuffle(&shuffle(&data, es), es), data, "elem {es}");
        }
    }

    #[test]
    fn roundtrip_with_remainder() {
        let data: Vec<u8> = (0..67u8).collect();
        for es in [2usize, 4, 8] {
            assert_eq!(unshuffle(&shuffle(&data, es), es), data, "elem {es}");
        }
    }

    #[test]
    fn known_small_case() {
        // Elements [a0 a1][b0 b1] shuffle to [a0 b0 a1 b1].
        assert_eq!(shuffle(&[1, 2, 3, 4], 2), vec![1, 3, 2, 4]);
    }

    #[test]
    fn shuffle_preserves_length_and_bytes() {
        let data: Vec<u8> = (0..255u8).map(|i| i.wrapping_mul(37)).collect();
        let s = shuffle(&data, 4);
        assert_eq!(s.len(), data.len());
        let mut a = data.clone();
        let mut b = s.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shuffle must be a permutation");
    }

    #[test]
    fn elem_size_one_is_identity() {
        let data = vec![9u8, 8, 7];
        assert_eq!(shuffle(&data, 1), data);
        assert_eq!(unshuffle(&data, 1), data);
    }

    #[test]
    fn empty_input() {
        assert!(shuffle(&[], 4).is_empty());
        assert!(unshuffle(&[], 4).is_empty());
    }
}
