//! LSB-first bit-level I/O.
//!
//! Shared by the deflate implementation here and by every lossy codec in
//! `cc-codecs` (fpzip residual coding, APAX block payloads, GRIB2 packing,
//! ISABELA index/correction streams). Bits are packed least-significant
//! first within each byte, deflate-style.

use crate::Error;

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits pending in `acc` (0..8).
    nbits: u32,
    acc: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `value` (`n ≤ 57` per call).
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(n == 64 || value < (1u64 << n), "value {value} wider than {n} bits");
        let mut acc = self.acc as u64 | (value << self.nbits);
        let mut total = self.nbits + n;
        while total >= 8 {
            self.buf.push((acc & 0xFF) as u8);
            acc >>= 8;
            total -= 8;
        }
        self.acc = acc as u8;
        self.nbits = total;
    }

    /// Write a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Write an Elias-gamma-style unary prefix + binary remainder
    /// (Golomb-Rice with parameter `k`): quotient in unary, remainder in
    /// `k` bits. Suited to geometrically distributed residuals.
    pub fn write_rice(&mut self, value: u64, k: u32) {
        let q = value >> k;
        // Escape very large quotients so pathological inputs stay O(bits).
        if q < 48 {
            for _ in 0..q {
                self.write_bit(true);
            }
            self.write_bit(false);
            if k > 0 {
                self.write_bits(value & ((1u64 << k) - 1), k);
            }
        } else {
            // Escape: 48 ones (no terminator — the reader switches to the
            // escape branch as soon as it counts 48), then the full 64-bit
            // value in two 32-bit halves.
            for _ in 0..48 {
                self.write_bit(true);
            }
            self.write_bits(value & 0xFFFF_FFFF, 32);
            self.write_bits(value >> 32, 32);
        }
    }

    /// Align to the next byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.buf.push(self.acc);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Finish, flushing any partial byte (zero-padded).
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.buf
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    acc: u64,
    /// Bits available in `acc`.
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data` starting at its first byte.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n ≤ 57` bits; errors if the stream is exhausted.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, Error> {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(Error::UnexpectedEof);
            }
        }
        let v = if n == 0 { 0 } else { self.acc & ((1u64 << n) - 1) };
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Result<bool, Error> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Inverse of [`BitWriter::write_rice`].
    pub fn read_rice(&mut self, k: u32) -> Result<u64, Error> {
        let mut q = 0u64;
        while self.read_bit()? {
            q += 1;
            if q == 48 {
                let lo = self.read_bits(32)?;
                let hi = self.read_bits(32)?;
                return Ok(lo | (hi << 32));
            }
        }
        let r = if k > 0 { self.read_bits(k)? } else { 0 };
        Ok((q << k) | r)
    }

    /// Push the low `n` bits of `value` back onto the stream so the next
    /// read returns them first. Used by table-driven Huffman decoding,
    /// which peeks the maximum code length and returns the excess.
    ///
    /// The caller must not unread more bits than it has just read (the
    /// accumulator holds at most 64 bits).
    pub fn unread_bits(&mut self, value: u64, n: u32) {
        debug_assert!(self.nbits + n <= 64, "unread overflow");
        self.acc = (self.acc << n) | (value & if n == 0 { 0 } else { u64::MAX >> (64 - n) });
        self.nbits += n;
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }

    /// True when every bit (up to byte padding) has been consumed.
    pub fn is_exhausted(&mut self) -> bool {
        self.refill();
        self.nbits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bit(true);
        w.write_bits(0x1FFFFF, 21);
        w.write_bits(0, 0);
        w.write_bits(0x0FFF_FFFF_FFFF, 44);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(21).unwrap(), 0x1FFFFF);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(44).unwrap(), 0x0FFF_FFFF_FFFF);
    }

    #[test]
    fn rice_roundtrip() {
        for k in 0..12u32 {
            let mut w = BitWriter::new();
            let values = [0u64, 1, 2, 7, 100, 1023, 1 << 20, u32::MAX as u64, u64::MAX >> 8];
            for &v in &values {
                w.write_rice(v, k);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(r.read_rice(k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn eof_is_error() {
        let bytes = BitWriter::new().finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn align_byte_writer_reader_agree() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 11);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn exhaustion_detection() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(!r.is_exhausted());
        r.read_bits(8).unwrap();
        assert!(r.is_exhausted());
    }
}
