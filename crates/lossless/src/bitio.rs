//! LSB-first bit-level I/O.
//!
//! Shared by the deflate implementation here and by every lossy codec in
//! `cc-codecs` (fpzip residual coding, APAX block payloads, GRIB2 packing,
//! ISABELA index/correction streams). Bits are packed least-significant
//! first within each byte, deflate-style.
//!
//! Both directions run on 64-bit accumulators with whole-word fast paths:
//! the writer flushes eight bytes at a time once the accumulator fills,
//! and the reader refills with a single unaligned little-endian word load
//! while eight or more input bytes remain. The byte stream produced is
//! identical to the historical byte-at-a-time implementation (pinned by
//! `tests/golden.rs`); only the number of memory operations per bit
//! changes.

use crate::Error;

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits pending in `acc` (0..64). Bits at positions `>= nbits` are
    /// always zero, so flushing is a plain little-endian store.
    nbits: u32,
    acc: u64,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `value` (`n ≤ 57` per call).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(n == 64 || value < (1u64 << n), "value {value} wider than {n} bits");
        let value = if n == 0 { 0 } else { value & (u64::MAX >> (64 - n)) };
        self.acc |= value << self.nbits;
        let total = self.nbits + n;
        if total >= 64 {
            self.buf.extend_from_slice(&self.acc.to_le_bytes());
            self.nbits = total - 64;
            // The bits that did not fit: `value`'s top `total - 64` bits.
            // The shift is in 1..=63 because this branch needs nbits ≥ 7.
            self.acc = value >> (n - self.nbits);
        } else {
            self.nbits = total;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Write an Elias-gamma-style unary prefix + binary remainder
    /// (Golomb-Rice with parameter `k`): quotient in unary, remainder in
    /// `k` bits. Suited to geometrically distributed residuals.
    #[inline]
    pub fn write_rice(&mut self, value: u64, k: u32) {
        let q = value >> k;
        if q < 48 {
            // `q` ones and the zero terminator in one call (≤ 48 bits),
            // then the remainder: at most two `write_bits` calls total.
            self.write_bits((1u64 << q) - 1, q as u32 + 1);
            if k > 0 {
                self.write_bits(value & ((1u64 << k) - 1), k);
            }
        } else {
            // Escape: 48 ones (no terminator — the reader switches to the
            // escape branch as soon as it counts 48), then the full 64-bit
            // value in two 32-bit halves.
            self.write_bits((1u64 << 48) - 1, 48);
            self.write_bits(value & 0xFFFF_FFFF, 32);
            self.write_bits(value >> 32, 32);
        }
    }

    /// Append whole bytes. The writer must be byte-aligned (call
    /// [`Self::align_byte`] first if unsure); the bytes land in the output
    /// exactly as given, with no bit-shifting.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert!(self.nbits.is_multiple_of(8), "write_bytes requires byte alignment");
        let pending = (self.nbits / 8) as usize;
        let le = self.acc.to_le_bytes();
        self.buf.extend_from_slice(&le[..pending]);
        self.acc = 0;
        self.nbits = 0;
        self.buf.extend_from_slice(bytes);
    }

    /// Align to the next byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            let bytes = self.nbits.div_ceil(8) as usize;
            let le = self.acc.to_le_bytes();
            self.buf.extend_from_slice(&le[..bytes]);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Finish, flushing any partial byte (zero-padded).
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.buf
    }
}

/// Reads bits LSB-first from a byte slice.
///
/// Invariant (the word-refill trick): with `consumed = pos * 8 - nbits`,
/// accumulator bits `[0, nbits)` hold stream bits `[consumed, consumed +
/// nbits)`, and every bit at position `>= nbits` is either zero or equal
/// to the corresponding stream bit at `pos * 8` onward. Refilling may
/// therefore OR a full word over the live bits: overlapping positions
/// receive the same value they already hold.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    acc: u64,
    /// Bits available in `acc`.
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data` starting at its first byte.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        if self.nbits >= 57 {
            // Already full enough for any single read; also keeps the
            // shift below in range when unread_bits pushed nbits to 64.
            return;
        }
        if self.data.len() - self.pos >= 8 {
            let w = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
            self.acc |= w << self.nbits;
            // Count exactly the whole bytes that fit (1..=8), leaving
            // nbits in 57..=64 so any single ≤57-bit read succeeds; the
            // loaded tail above the counted bits stays as a valid stale
            // prefix of data[pos..].
            let take = (64 - self.nbits) >> 3;
            self.pos += take as usize;
            self.nbits += take * 8;
        } else {
            while self.nbits <= 56 && self.pos < self.data.len() {
                self.acc |= (self.data[self.pos] as u64) << self.nbits;
                self.pos += 1;
                self.nbits += 8;
            }
        }
    }

    /// Read `n ≤ 57` bits; errors if the stream is exhausted.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, Error> {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(Error::UnexpectedEof);
            }
        }
        let v = if n == 0 { 0 } else { self.acc & ((1u64 << n) - 1) };
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, Error> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Inverse of [`BitWriter::write_rice`]. The unary quotient is decoded
    /// by counting trailing ones in the accumulator word, not bit by bit.
    pub fn read_rice(&mut self, k: u32) -> Result<u64, Error> {
        let mut q = 0u32;
        loop {
            if self.nbits == 0 {
                self.refill();
                if self.nbits == 0 {
                    return Err(Error::UnexpectedEof);
                }
            }
            let run = (!self.acc).trailing_zeros();
            if run >= self.nbits {
                // Every live bit is a one; consume them (capped at the
                // escape threshold) and refill for more.
                let take = self.nbits.min(48 - q);
                self.acc = if take == 64 { 0 } else { self.acc >> take };
                self.nbits -= take;
                q += take;
                if q == 48 {
                    break;
                }
                continue;
            }
            if q + run >= 48 {
                // The escape threshold is reached before the terminator;
                // the remaining ones belong to the escape payload.
                let take = 48 - q;
                self.acc >>= take;
                self.nbits -= take;
                break;
            }
            // `run` ones then the zero terminator, all live.
            self.acc >>= run + 1;
            self.nbits -= run + 1;
            q += run;
            let r = if k > 0 { self.read_bits(k)? } else { 0 };
            return Ok(((q as u64) << k) | r);
        }
        let lo = self.read_bits(32)?;
        let hi = self.read_bits(32)?;
        Ok(lo | (hi << 32))
    }

    /// Fill `out` with whole bytes. The reader must be byte-aligned
    /// (`bits_consumed() % 8 == 0`); bytes are copied directly with no
    /// bit-shifting. Errors (consuming nothing further) if fewer than
    /// `out.len()` bytes remain.
    pub fn read_bytes(&mut self, out: &mut [u8]) -> Result<(), Error> {
        debug_assert!(self.bits_consumed().is_multiple_of(8), "read_bytes requires byte alignment");
        let buffered = (self.nbits / 8) as usize;
        let from_acc = buffered.min(out.len());
        let rest = out.len() - from_acc;
        if self.data.len() - self.pos < rest {
            return Err(Error::UnexpectedEof);
        }
        for slot in out.iter_mut().take(from_acc) {
            *slot = (self.acc & 0xFF) as u8;
            self.acc >>= 8;
            self.nbits -= 8;
        }
        if rest > 0 {
            // Aligned and the accumulator is drained of counted bits, but
            // its stale tail referenced data[pos..] which we now step
            // past: clear it to restore the refill invariant.
            debug_assert_eq!(self.nbits, 0);
            self.acc = 0;
            out[from_acc..].copy_from_slice(&self.data[self.pos..self.pos + rest]);
            self.pos += rest;
        }
        Ok(())
    }

    /// Push the low `n` bits of `value` back onto the stream so the next
    /// read returns them first. Used by table-driven Huffman decoding,
    /// which peeks the maximum code length and returns the excess.
    ///
    /// The caller must not unread more bits than it has just read (the
    /// accumulator holds at most 64 bits).
    #[inline]
    pub fn unread_bits(&mut self, value: u64, n: u32) {
        debug_assert!(self.nbits + n <= 64, "unread overflow");
        self.acc = (self.acc << n) | (value & if n == 0 { 0 } else { u64::MAX >> (64 - n) });
        self.nbits += n;
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }

    /// True when every bit (up to byte padding) has been consumed.
    pub fn is_exhausted(&mut self) -> bool {
        self.refill();
        self.nbits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bit(true);
        w.write_bits(0x1FFFFF, 21);
        w.write_bits(0, 0);
        w.write_bits(0x0FFF_FFFF_FFFF, 44);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(21).unwrap(), 0x1FFFFF);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(44).unwrap(), 0x0FFF_FFFF_FFFF);
    }

    #[test]
    fn rice_roundtrip() {
        for k in 0..12u32 {
            let mut w = BitWriter::new();
            let values = [0u64, 1, 2, 7, 100, 1023, 1 << 20, u32::MAX as u64, u64::MAX >> 8];
            for &v in &values {
                w.write_rice(v, k);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(r.read_rice(k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn rice_escape_boundary() {
        // Quotients around the 48-ones escape threshold, including values
        // whose escape payload starts with more ones.
        for k in [0u32, 1, 5, 11] {
            let mut w = BitWriter::new();
            let values: Vec<u64> =
                (44..52).map(|q| ((q as u64) << k) | (k as u64 & ((1 << k) - 1))).collect();
            for &v in &values {
                w.write_rice(v, k);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(r.read_rice(k).unwrap(), v, "k={k}");
            }
            // Only zero padding from finish() may remain.
            r.align_byte();
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn eof_is_error() {
        let bytes = BitWriter::new().finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn rice_truncated_run_is_eof() {
        // A stream that ends inside a unary run must error, not loop.
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_rice(4), Err(Error::UnexpectedEof));
    }

    #[test]
    fn align_byte_writer_reader_agree() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let payload: Vec<u8> = (0..1000u32).map(|i| (i * 131 % 251) as u8).collect();
        let mut w = BitWriter::new();
        w.write_bits(0b1_0110, 5);
        w.align_byte();
        w.write_bytes(&payload);
        w.write_bits(0x3FF, 10);
        w.align_byte();
        w.write_bytes(&payload[..7]);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(5).unwrap(), 0b1_0110);
        r.align_byte();
        let mut back = vec![0u8; payload.len()];
        r.read_bytes(&mut back).unwrap();
        assert_eq!(back, payload);
        assert_eq!(r.read_bits(10).unwrap(), 0x3FF);
        r.align_byte();
        let mut tail = vec![0u8; 7];
        r.read_bytes(&mut tail).unwrap();
        assert_eq!(tail, payload[..7]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn read_bytes_past_end_is_eof() {
        let mut w = BitWriter::new();
        w.write_bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = [0u8; 4];
        assert_eq!(r.read_bytes(&mut out), Err(Error::UnexpectedEof));
    }

    #[test]
    fn bulk_bytes_equal_bitwise_writes() {
        // write_bytes must produce the same stream as eight write_bits(…, 8)
        // calls — the bulk path is a fast path, not a format change.
        let payload: Vec<u8> = (0..257u32).map(|i| (i % 256) as u8).collect();
        let mut a = BitWriter::new();
        a.write_bits(0x5, 3);
        a.align_byte();
        a.write_bytes(&payload);
        let mut b = BitWriter::new();
        b.write_bits(0x5, 3);
        b.align_byte();
        for &byte in &payload {
            b.write_bits(byte as u64, 8);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn unread_bits_roundtrip_after_word_refill() {
        // Exercise unread against the word-refill stale-bit invariant.
        let mut w = BitWriter::new();
        for i in 0..64u64 {
            w.write_bits(i, 6);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..64u64 {
            let peek = r.read_bits(6).unwrap();
            r.unread_bits(peek, 6);
            assert_eq!(r.read_bits(6).unwrap(), i);
        }
    }

    #[test]
    fn wide_reads_at_every_phase() {
        // A 57-bit read must succeed at any bit phase, in particular at
        // byte-aligned positions where a refill that counts `nbits | 56`
        // bits (instead of exactly) tops out at 56 and spuriously EOFs.
        // This is the GRIB2 header shape: 8 bits, then 57 + 7.
        for lead in 0..16u32 {
            let mut w = BitWriter::new();
            w.write_bits(0x5A5A & ((1 << lead) - 1), lead);
            w.write_bits(0x00FF_F0F0_ABCD_1234 & ((1u64 << 57) - 1), 57);
            w.write_bits(0x55, 7);
            w.write_bits(0xDEAD_BEEF, 32);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(lead).unwrap(), (0x5A5A & ((1 << lead) - 1)) as u64);
            assert_eq!(
                r.read_bits(57).unwrap(),
                0x00FF_F0F0_ABCD_1234 & ((1u64 << 57) - 1),
                "lead={lead}"
            );
            assert_eq!(r.read_bits(7).unwrap(), 0x55);
            assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 11);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn exhaustion_detection() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(!r.is_exhausted());
        r.read_bits(8).unwrap();
        assert!(r.is_exhausted());
    }
}
