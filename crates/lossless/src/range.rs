//! Adaptive binary range coding (LZMA-style).
//!
//! The published fpzip uses a fast entropy coder over residual bit
//! lengths rather than static Golomb-Rice codes. This module supplies
//! that machinery: a carry-less binary range coder with 12-bit adaptive
//! probabilities ([`BitModel`]) and a bit-tree helper for small alphabets.
//! `cc-codecs` uses it as fpzip's alternative entropy stage, and the
//! ablation benches compare it against Rice coding.

use crate::Error;

/// Probability precision: 12 bits (0..4096).
const PROB_BITS: u32 = 12;
const PROB_ONE: u32 = 1 << PROB_BITS;
/// Adaptation shift: higher = slower adaptation.
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability of the next bit being 0.
#[derive(Debug, Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel((PROB_ONE / 2) as u16)
    }
}

impl BitModel {
    /// Fresh model at p(0) = 1/2.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn update(&mut self, bit: bool) {
        let p = self.0 as u32;
        if bit {
            self.0 = (p - (p >> ADAPT_SHIFT)) as u16;
        } else {
            self.0 = (p + ((PROB_ONE - p) >> ADAPT_SHIFT)) as u16;
        }
    }
}

/// Range encoder writing to an internal byte buffer.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// New empty encoder.
    pub fn new() -> Self {
        RangeEncoder { low: 0, range: u32::MAX, cache: 0, cache_size: 1, out: Vec::new() }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000u64 || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(byte);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one bit with an adaptive model.
    #[inline]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        if !bit {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `n` raw bits (MSB first) at probability 1/2 without a model.
    pub fn encode_direct(&mut self, value: u64, n: u32) {
        for i in (0..n).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush and return the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte slice.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    code: u32,
    range: u32,
}

impl<'a> RangeDecoder<'a> {
    /// Initialize from encoder output.
    pub fn new(data: &'a [u8]) -> Result<Self, Error> {
        let mut d = RangeDecoder { data, pos: 1, code: 0, range: u32::MAX };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte()? as u32;
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> Result<u8, Error> {
        let b = self.data.get(self.pos).copied();
        self.pos += 1;
        // Reading past the end returns zero padding: the encoder's final
        // flush bytes may be truncated by containers that store exact
        // logical lengths; trailing zeros decode identically.
        Ok(b.unwrap_or(0))
    }

    /// Decode one bit with an adaptive model.
    #[inline]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> Result<bool, Error> {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte()? as u32;
        }
        Ok(bit)
    }

    /// Decode `n` raw bits (MSB first).
    pub fn decode_direct(&mut self, n: u32) -> Result<u64, Error> {
        let mut value = 0u64;
        for _ in 0..n {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1u64
            } else {
                0u64
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte()? as u32;
            }
        }
        Ok(value)
    }
}

/// A bit-tree over `2^bits` symbols: each internal node carries a
/// [`BitModel`]; frequent symbols cost well under `bits` bits.
#[derive(Debug, Clone)]
pub struct BitTree {
    bits: u32,
    models: Vec<BitModel>,
}

impl BitTree {
    /// Tree over `2^bits` symbols.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits));
        BitTree { bits, models: vec![BitModel::new(); 1 << bits] }
    }

    /// Encode `symbol < 2^bits`.
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: u32) {
        debug_assert!(symbol < (1 << self.bits));
        let mut node = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (symbol >> i) & 1 == 1;
            enc.encode_bit(&mut self.models[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    /// Decode a symbol.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<u32, Error> {
        let mut node = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode_bit(&mut self.models[node])?;
            node = (node << 1) | bit as usize;
        }
        Ok(node as u32 - (1 << self.bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_roundtrip_biased_stream() {
        let bits: Vec<bool> = (0..10_000).map(|i| i % 17 == 0).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let bytes = enc.finish();
        // Highly biased stream compresses far below 1 bit/symbol.
        assert!(bytes.len() < 10_000 / 8 / 2, "{} bytes", bytes.len());
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut m = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m).unwrap(), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values: Vec<(u64, u32)> =
            vec![(0, 1), (1, 1), (5, 3), (0xDEAD, 16), (0xFFFF_FFFF, 32), (12345, 20)];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n).unwrap(), v, "{v}/{n}");
        }
    }

    #[test]
    fn mixed_model_and_direct() {
        let mut enc = RangeEncoder::new();
        let mut m1 = BitModel::new();
        let mut m2 = BitModel::new();
        for i in 0..1000 {
            enc.encode_bit(&mut m1, i % 3 == 0);
            enc.encode_direct((i % 7) as u64, 3);
            enc.encode_bit(&mut m2, i % 2 == 0);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut m1 = BitModel::new();
        let mut m2 = BitModel::new();
        for i in 0..1000 {
            assert_eq!(dec.decode_bit(&mut m1).unwrap(), i % 3 == 0);
            assert_eq!(dec.decode_direct(3).unwrap(), (i % 7) as u64);
            assert_eq!(dec.decode_bit(&mut m2).unwrap(), i % 2 == 0);
        }
    }

    #[test]
    fn bit_tree_roundtrip_skewed_alphabet() {
        let symbols: Vec<u32> = (0..20_000).map(|i: u32| (i * i) % 33 % 8).collect();
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(3);
        for &s in &symbols {
            tree.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut tree = BitTree::new(3);
        for &s in &symbols {
            assert_eq!(tree.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn adaptation_beats_static_on_drifting_source() {
        // First half mostly zeros, second half mostly ones: the adaptive
        // model follows, so total size stays well under 1 bit/symbol.
        let bits: Vec<bool> = (0..20_000).map(|i| {
            if i < 10_000 { i % 20 == 0 } else { i % 20 != 0 }
        }).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let bytes = enc.finish();
        assert!(bytes.len() * 8 < 20_000 / 2, "{} bytes", bytes.len());
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut m = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m).unwrap(), b);
        }
    }

    #[test]
    fn empty_stream_decodes_nothing() {
        let enc = RangeEncoder::new();
        let bytes = enc.finish();
        assert!(RangeDecoder::new(&bytes).is_ok());
    }
}
