//! A bzip2-class block-sorting compressor: Burrows-Wheeler transform +
//! move-to-front + run-length + canonical Huffman.
//!
//! The paper's related-work section observes that "traditional
//! general-purpose lossless compression techniques … such as gzip, bzip2,
//! and lmza, for example, are relatively ineffective on most scientific
//! data". Having a block-sorting compressor alongside the LZ77 deflate
//! lets the ablation benchmarks *show* that claim on the emulator's data
//! instead of citing it: both general-purpose families plateau at similar
//! ratios on float mantissa bytes.
//!
//! Pipeline per block (≤ [`BLOCK_SIZE`] bytes):
//!
//! ```text
//! BWT (suffix-array based, sentinel-free with stored primary index)
//!   → move-to-front → zero run-length encoding (RUNA/RUNB style)
//!   → canonical Huffman over the MTF/RLE symbol alphabet
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{Decoder, Encoder, MAX_CODE_LEN};
use crate::Error;

/// Maximum bytes per BWT block (bzip2 uses 100k-900k; 256 KiB here).
pub const BLOCK_SIZE: usize = 256 * 1024;

/// Compress `data` with the block-sorting pipeline.
pub fn bwt_compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(data.len() as u64 & 0xFFFF_FFFF, 32);
    w.write_bits((data.len() as u64) >> 32, 32);
    for block in data.chunks(BLOCK_SIZE) {
        compress_block(block, &mut w);
    }
    w.finish()
}

/// Decompress a stream produced by [`bwt_compress`].
pub fn bwt_decompress(bytes: &[u8]) -> Result<Vec<u8>, Error> {
    let mut r = BitReader::new(bytes);
    let lo = r.read_bits(32)?;
    let hi = r.read_bits(32)?;
    let total = (lo | (hi << 32)) as usize;
    // Each block emits at most BLOCK_SIZE bytes and costs at least its
    // ~130-byte Huffman-length table, bounding honest expansion well
    // under 4096x; reject bigger declared lengths before allocating.
    if total > bytes.len().saturating_mul(4096) {
        return Err(Error::Corrupt("declared length exceeds maximum expansion"));
    }
    // Header-driven pre-allocation is capped at 16x the input; growth past
    // that only follows actually-decoded content.
    let cap = bytes.len().saturating_mul(16);
    if total > cap {
        cc_obs::counter_inc("lossless.alloc_cap_hits");
    }
    let mut out = Vec::with_capacity(total.min(cap));
    while out.len() < total {
        let n = BLOCK_SIZE.min(total - out.len());
        decompress_block(&mut r, n, &mut out)?;
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Burrows-Wheeler transform via suffix array (SA-IS would be fancier; a
// doubling sort is O(n log² n) and dependency-free).
// --------------------------------------------------------------------

/// Forward BWT over the *rotations* of `data`. Returns the transformed
/// bytes plus the primary index (row of the original string).
pub fn bwt_forward(data: &[u8]) -> (Vec<u8>, usize) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Sort rotation indices with a doubled key built on the cyclic string.
    // rank[i] = rank of rotation starting at i by the first `width` chars.
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<i64> = data.iter().map(|&b| b as i64).collect();
    let mut tmp = vec![0i64; n];
    let mut width = 1usize;
    loop {
        let key = |i: u32| -> (i64, i64) {
            let i = i as usize;
            (rank[i], rank[(i + width) % n])
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] =
                tmp[prev as usize] + if key(cur) != key(prev) { 1 } else { 0 };
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        // Periodic inputs (period p | n) have genuinely equal rotations:
        // ranks stop refining once width ≥ n. Ties are harmless — equal
        // rotations are identical rows of the sort matrix, and the LF
        // inverse walks their (shorter) cycle n/p times, reproducing the
        // original string.
        if width >= n {
            break;
        }
        width *= 2;
    }
    let mut out = Vec::with_capacity(n);
    let mut primary = 0usize;
    for (row, &start) in sa.iter().enumerate() {
        let start = start as usize;
        if start == 0 {
            primary = row;
        }
        out.push(data[(start + n - 1) % n]);
    }
    (out, primary)
}

/// Inverse BWT.
pub fn bwt_inverse(bwt: &[u8], primary: usize) -> Result<Vec<u8>, Error> {
    let n = bwt.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if primary >= n {
        return Err(Error::Corrupt("BWT primary index out of range"));
    }
    // Standard LF-mapping reconstruction.
    let mut counts = [0usize; 256];
    for &b in bwt {
        counts[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0usize;
    for (b, &c) in counts.iter().enumerate() {
        starts[b] = acc;
        acc += c;
    }
    let mut next = vec![0u32; n];
    let mut seen = [0usize; 256];
    for (i, &b) in bwt.iter().enumerate() {
        next[starts[b as usize] + seen[b as usize]] = i as u32;
        seen[b as usize] += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut row = primary;
    for _ in 0..n {
        row = next[row] as usize;
        out.push(bwt[row]);
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Move-to-front + zero-run-length coding.
// --------------------------------------------------------------------

/// Symbol alphabet after MTF/RLE: RUNA(0), RUNB(1), literals 2..=256
/// (MTF value `m ∈ 1..=255` maps to symbol `m + 1`; MTF 0 is always
/// run-coded).
const SYM_RUNA: usize = 0;
const SYM_RUNB: usize = 1;
const NSYM: usize = 257;

/// MTF + zero-RLE encode.
pub fn mtf_rle_encode(data: &[u8]) -> Vec<u16> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    let mut zero_run = 0usize;
    let flush = |run: &mut usize, out: &mut Vec<u16>| {
        // bzip2's bijective base-2 run coding with RUNA/RUNB.
        let mut r = *run;
        while r > 0 {
            if r & 1 == 1 {
                out.push(SYM_RUNA as u16);
                r = (r - 1) >> 1;
            } else {
                out.push(SYM_RUNB as u16);
                r = (r - 2) >> 1;
            }
        }
        *run = 0;
    };
    for &b in data {
        let pos = table.iter().position(|&x| x == b).expect("byte in table");
        if pos == 0 {
            zero_run += 1;
            continue;
        }
        flush(&mut zero_run, &mut out);
        out.push((pos + 1) as u16); // literal symbol = mtf + 1, mtf ≥ 1
        table.copy_within(0..pos, 1);
        table[0] = b;
    }
    flush(&mut zero_run, &mut out);
    out
}

/// Inverse of [`mtf_rle_encode`].
pub fn mtf_rle_decode(symbols: &[u16], out_len: usize) -> Result<Vec<u8>, Error> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(out_len);
    let mut i = 0usize;
    while i < symbols.len() {
        let s = symbols[i] as usize;
        if s == SYM_RUNA || s == SYM_RUNB {
            // Collect the whole run group. A corrupt stream can supply an
            // arbitrarily long group, so the accumulators saturate (the
            // bijective coding doubles `place` each symbol) and the bound
            // check happens before any extension.
            let mut run = 0usize;
            let mut place = 1usize;
            while i < symbols.len() {
                match symbols[i] as usize {
                    SYM_RUNA => run = run.saturating_add(place),
                    SYM_RUNB => run = run.saturating_add(place.saturating_mul(2)),
                    _ => break,
                }
                place = place.saturating_mul(2);
                i += 1;
            }
            if run > out_len.saturating_sub(out.len()) {
                return Err(Error::Corrupt("run overflows block"));
            }
            let b = table[0];
            out.extend(std::iter::repeat_n(b, run));
        } else {
            let mtf = s - 1;
            if mtf > 255 {
                return Err(Error::Corrupt("bad MTF symbol"));
            }
            if out.len() >= out_len {
                return Err(Error::Corrupt("literal overflows block"));
            }
            let b = table[mtf];
            table.copy_within(0..mtf, 1);
            table[0] = b;
            out.push(b);
            i += 1;
        }
    }
    if out.len() != out_len {
        return Err(Error::Corrupt("block length mismatch after MTF/RLE"));
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Block framing: primary index + Huffman-coded symbol stream.
// --------------------------------------------------------------------

fn compress_block(block: &[u8], w: &mut BitWriter) {
    let (bwt, primary) = bwt_forward(block);
    let symbols = mtf_rle_encode(&bwt);
    let mut freqs = vec![0u64; NSYM];
    for &s in &symbols {
        freqs[s as usize] += 1;
    }
    let enc = Encoder::from_freqs(&freqs, MAX_CODE_LEN);
    w.write_bits(primary as u64, 32);
    w.write_bits(symbols.len() as u64, 32);
    for &l in enc.lengths() {
        w.write_bits(l as u64, 4);
    }
    for &s in &symbols {
        enc.write_symbol(w, s as usize);
    }
}

fn decompress_block(r: &mut BitReader<'_>, n: usize, out: &mut Vec<u8>) -> Result<(), Error> {
    let primary = r.read_bits(32)? as usize;
    let nsym = r.read_bits(32)? as usize;
    if nsym > 2 * n + 64 {
        return Err(Error::Corrupt("implausible symbol count"));
    }
    let mut lengths = vec![0u32; NSYM];
    for l in lengths.iter_mut() {
        *l = r.read_bits(4)? as u32;
    }
    let dec = Decoder::from_lengths(&lengths)?;
    let mut symbols = Vec::with_capacity(nsym);
    for _ in 0..nsym {
        symbols.push(dec.read_symbol(r)? as u16);
    }
    let bwt = mtf_rle_decode(&symbols, n)?;
    out.extend(bwt_inverse(&bwt, primary)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let z = bwt_compress(data);
        assert_eq!(bwt_decompress(&z).unwrap(), data, "roundtrip failed");
        z.len()
    }

    #[test]
    fn bwt_known_example() {
        // The classic: "banana" rotations sorted give BWT "nnbaaa".
        let (bwt, primary) = bwt_forward(b"banana");
        assert_eq!(&bwt, b"nnbaaa");
        assert_eq!(bwt_inverse(&bwt, primary).unwrap(), b"banana");
    }

    #[test]
    fn bwt_inverse_of_forward_various() {
        for data in [
            b"".as_slice(),
            b"a",
            b"aaaa",
            b"abracadabra",
            b"mississippi",
        ] {
            let (bwt, primary) = bwt_forward(data);
            assert_eq!(bwt_inverse(&bwt, primary).unwrap(), data);
        }
    }

    #[test]
    fn mtf_rle_roundtrip() {
        let data = b"aaaabbbcccdddaaaa___zzzz";
        let symbols = mtf_rle_encode(data);
        assert_eq!(mtf_rle_decode(&symbols, data.len()).unwrap(), data);
        // Runs shrink the stream.
        assert!(symbols.len() < data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"xy");
    }

    #[test]
    fn text_compresses_well() {
        let data = "the community earth system model writes history files. ".repeat(100);
        let n = roundtrip(data.as_bytes());
        assert!(n < data.len() / 4, "{n} vs {}", data.len());
    }

    #[test]
    fn random_bytes_roundtrip() {
        let mut state = 123u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn float_bytes_roundtrip() {
        let floats: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.01).sin() * 300.0).collect();
        let data: Vec<u8> = floats.iter().flat_map(|v| v.to_le_bytes()).collect();
        roundtrip(&data);
    }

    #[test]
    fn multi_block_input() {
        let data: Vec<u8> = (0..BLOCK_SIZE + 1000).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = b"hello hello hello hello".repeat(20);
        let z = bwt_compress(&data);
        for cut in [0usize, 4, 8, z.len() / 2] {
            assert!(bwt_decompress(&z[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_primary_index_detected() {
        let data = b"some data to transform and compress".repeat(10);
        let mut z = bwt_compress(&data);
        // Corrupt the primary index field (first block header after the
        // 8-byte length).
        z[9] ^= 0xFF;
        match bwt_decompress(&z) {
            Err(_) => {}
            Ok(out) => assert_ne!(out, data, "corruption silently ignored"),
        }
    }
}
