//! A bzip2-class block-sorting compressor: Burrows-Wheeler transform +
//! move-to-front + run-length + canonical Huffman.
//!
//! The paper's related-work section observes that "traditional
//! general-purpose lossless compression techniques … such as gzip, bzip2,
//! and lmza, for example, are relatively ineffective on most scientific
//! data". Having a block-sorting compressor alongside the LZ77 deflate
//! lets the ablation benchmarks *show* that claim on the emulator's data
//! instead of citing it: both general-purpose families plateau at similar
//! ratios on float mantissa bytes.
//!
//! Pipeline per block (≤ [`BLOCK_SIZE`] bytes):
//!
//! ```text
//! BWT (suffix-array based, sentinel-free with stored primary index)
//!   → move-to-front → zero run-length encoding (RUNA/RUNB style)
//!   → canonical Huffman over the MTF/RLE symbol alphabet
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{Decoder, Encoder, MAX_CODE_LEN};
use crate::Error;

/// Maximum bytes per BWT block (bzip2 uses 100k-900k; 256 KiB here).
pub const BLOCK_SIZE: usize = 256 * 1024;

/// Compress `data` with the block-sorting pipeline.
pub fn bwt_compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(data.len() as u64 & 0xFFFF_FFFF, 32);
    w.write_bits((data.len() as u64) >> 32, 32);
    for block in data.chunks(BLOCK_SIZE) {
        compress_block(block, &mut w);
    }
    w.finish()
}

/// Decompress a stream produced by [`bwt_compress`].
pub fn bwt_decompress(bytes: &[u8]) -> Result<Vec<u8>, Error> {
    let mut r = BitReader::new(bytes);
    let lo = r.read_bits(32)?;
    let hi = r.read_bits(32)?;
    let total = (lo | (hi << 32)) as usize;
    // Each block emits at most BLOCK_SIZE bytes and costs at least its
    // ~130-byte Huffman-length table, bounding honest expansion well
    // under 4096x; reject bigger declared lengths before allocating.
    if total > bytes.len().saturating_mul(4096) {
        return Err(Error::Corrupt("declared length exceeds maximum expansion"));
    }
    // Header-driven pre-allocation is capped at 16x the input; growth past
    // that only follows actually-decoded content.
    let cap = bytes.len().saturating_mul(16);
    if total > cap {
        cc_obs::counter_inc("lossless.alloc_cap_hits");
    }
    let mut out = Vec::with_capacity(total.min(cap));
    while out.len() < total {
        let n = BLOCK_SIZE.min(total - out.len());
        decompress_block(&mut r, n, &mut out)?;
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Burrows-Wheeler transform via a linear-time SA-IS suffix array.
//
// Rotations are sorted by building the suffix array of `data · data` and
// keeping the positions below `n`: a rotation is exactly the first `n`
// characters of the corresponding doubled-string suffix, so any
// difference between two rotations shows up at the same offset in their
// suffixes. Equal rotations (periodic inputs) are identical rows of the
// conceptual sort matrix, so their relative order cannot change the BWT
// bytes — and the LF inverse walks their shorter cycle the right number
// of times regardless of which row is marked primary.
// --------------------------------------------------------------------

/// Forward BWT over the *rotations* of `data`. Returns the transformed
/// bytes plus the primary index (row of the original string).
pub fn bwt_forward(data: &[u8]) -> (Vec<u8>, usize) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut doubled = Vec::with_capacity(2 * n);
    doubled.extend_from_slice(data);
    doubled.extend_from_slice(data);
    let sa = suffix_array(&doubled);
    let mut out = Vec::with_capacity(n);
    let mut primary = 0usize;
    let mut row = 0usize;
    for &p in &sa {
        let start = p as usize;
        if start < n {
            if start == 0 {
                primary = row;
            }
            out.push(data[(start + n - 1) % n]);
            row += 1;
        }
    }
    (out, primary)
}

/// Reference rotation sort: the original O(n log² n) prefix-doubling
/// implementation, retained verbatim as the equivalence oracle for the
/// SA-IS path (`tests/sais_equivalence.rs`). Not used by the codec.
pub fn bwt_forward_doubling(data: &[u8]) -> (Vec<u8>, usize) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Sort rotation indices with a doubled key built on the cyclic string.
    // rank[i] = rank of rotation starting at i by the first `width` chars.
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<i64> = data.iter().map(|&b| b as i64).collect();
    let mut tmp = vec![0i64; n];
    let mut width = 1usize;
    loop {
        let key = |i: u32| -> (i64, i64) {
            let i = i as usize;
            (rank[i], rank[(i + width) % n])
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] =
                tmp[prev as usize] + if key(cur) != key(prev) { 1 } else { 0 };
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        // Periodic inputs (period p | n) have genuinely equal rotations:
        // ranks stop refining once width ≥ n. Ties are harmless — equal
        // rotations are identical rows of the sort matrix, and the LF
        // inverse walks their (shorter) cycle n/p times, reproducing the
        // original string.
        if width >= n {
            break;
        }
        width *= 2;
    }
    let mut out = Vec::with_capacity(n);
    let mut primary = 0usize;
    for (row, &start) in sa.iter().enumerate() {
        let start = start as usize;
        if start == 0 {
            primary = row;
        }
        out.push(data[(start + n - 1) % n]);
    }
    (out, primary)
}

/// Linear-time suffix array over bytes (SA-IS, induced sorting with an
/// implicit sentinel smaller than every character).
pub fn suffix_array(data: &[u8]) -> Vec<u32> {
    assert!(data.len() < u32::MAX as usize, "input too large for u32 suffix array");
    let text: Vec<u32> = data.iter().map(|&b| b as u32).collect();
    sais(&text, 256)
}

/// `sa[i] == EMPTY` marks an unfilled slot during induced sorting.
const EMPTY: u32 = u32::MAX;

/// SA-IS over a `u32` alphabet `0..k`. Characters are compared with the
/// usual convention of a virtual sentinel at `s.len()` that is strictly
/// smaller than every character (the sentinel's suffix is *not* part of
/// the returned array).
fn sais(s: &[u32], k: usize) -> Vec<u32> {
    let n = s.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    // Suffix types: is_s[i] ⇔ suffix(i) < suffix(i+1). The last suffix is
    // L-type because the sentinel suffix after it is the smallest.
    let mut is_s = vec![false; n];
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // bucket[c] = first SA slot of character c's bucket; bucket[c+1] its end.
    let mut bucket = vec![0u32; k + 1];
    for &c in s {
        bucket[c as usize + 1] += 1;
    }
    for c in 0..k {
        bucket[c + 1] += bucket[c];
    }

    let mut sa = vec![EMPTY; n];

    // Pass 1: drop LMS suffixes at their bucket tails in any order, then
    // induce; this sorts the LMS *substrings*.
    let mut tails: Vec<u32> = bucket[1..=k].to_vec();
    for (i, &ch) in s.iter().enumerate().skip(1) {
        if lms(i) {
            let c = ch as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = i as u32;
        }
    }
    induce(s, &is_s, &bucket, &mut sa);

    // Name LMS substrings in their sorted order.
    let lms_pos: Vec<u32> = (1..n).filter(|&i| lms(i)).map(|i| i as u32).collect();
    let lms_sorted: Vec<u32> = sa.iter().copied().filter(|&j| lms(j as usize)).collect();
    debug_assert_eq!(lms_pos.len(), lms_sorted.len());
    let mut name_of = vec![EMPTY; n];
    let mut name = 0u32;
    let mut prev: Option<usize> = None;
    for &j in &lms_sorted {
        let j = j as usize;
        if let Some(p) = prev {
            if !lms_substrings_equal(s, &is_s, p, j) {
                name += 1;
            }
        }
        name_of[j] = name;
        prev = Some(j);
    }
    let names = name as usize + 1;

    // True order of LMS suffixes: direct if all substrings are distinct,
    // otherwise from the suffix array of the reduced (named) string.
    let lms_order: Vec<u32> = if names == lms_pos.len() {
        lms_sorted
    } else {
        let reduced: Vec<u32> = lms_pos.iter().map(|&i| name_of[i as usize]).collect();
        let rsa = sais(&reduced, names);
        rsa.iter().map(|&ri| lms_pos[ri as usize]).collect()
    };

    // Pass 2: seed the buckets with LMS suffixes in their true order and
    // induce the rest.
    sa.fill(EMPTY);
    let mut tails: Vec<u32> = bucket[1..=k].to_vec();
    for &j in lms_order.iter().rev() {
        let c = s[j as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = j;
    }
    induce(s, &is_s, &bucket, &mut sa);
    sa
}

/// Both induced-sorting sweeps: L-type suffixes left-to-right from bucket
/// heads, then S-type right-to-left from bucket tails.
fn induce(s: &[u32], is_s: &[bool], bucket: &[u32], sa: &mut [u32]) {
    let n = s.len();
    let k = bucket.len() - 1;
    let mut heads: Vec<u32> = bucket[..k].to_vec();
    // The suffix preceding the virtual sentinel induces first.
    {
        let p = n - 1;
        if !is_s[p] {
            let c = s[p] as usize;
            sa[heads[c] as usize] = p as u32;
            heads[c] += 1;
        }
    }
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j != 0 {
            let p = j as usize - 1;
            if !is_s[p] {
                let c = s[p] as usize;
                sa[heads[c] as usize] = p as u32;
                heads[c] += 1;
            }
        }
    }
    let mut tails: Vec<u32> = bucket[1..=k].to_vec();
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j != 0 {
            let p = j as usize - 1;
            if is_s[p] {
                let c = s[p] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p as u32;
            }
        }
    }
}

/// Compare the LMS substrings starting at `a` and `b` (both LMS
/// positions): equal iff they have the same characters and types up to
/// and including the next LMS position. Reaching the end of the text is
/// a mismatch — the sentinel is unique.
fn lms_substrings_equal(s: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    if a == b {
        return true;
    }
    let lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut i = 0usize;
    loop {
        let (pa, pb) = (a + i, b + i);
        if pa >= n || pb >= n {
            return false;
        }
        if s[pa] != s[pb] {
            return false;
        }
        if i > 0 {
            let (la, lb) = (lms(pa), lms(pb));
            if la || lb {
                return la && lb;
            }
        }
        i += 1;
    }
}

/// Inverse BWT.
pub fn bwt_inverse(bwt: &[u8], primary: usize) -> Result<Vec<u8>, Error> {
    let n = bwt.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if primary >= n {
        return Err(Error::Corrupt("BWT primary index out of range"));
    }
    // Standard LF-mapping reconstruction.
    let mut counts = [0usize; 256];
    for &b in bwt {
        counts[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0usize;
    for (b, &c) in counts.iter().enumerate() {
        starts[b] = acc;
        acc += c;
    }
    let mut next = vec![0u32; n];
    let mut seen = [0usize; 256];
    for (i, &b) in bwt.iter().enumerate() {
        next[starts[b as usize] + seen[b as usize]] = i as u32;
        seen[b as usize] += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut row = primary;
    for _ in 0..n {
        row = next[row] as usize;
        out.push(bwt[row]);
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Move-to-front + zero-run-length coding.
// --------------------------------------------------------------------

/// Symbol alphabet after MTF/RLE: RUNA(0), RUNB(1), literals 2..=256
/// (MTF value `m ∈ 1..=255` maps to symbol `m + 1`; MTF 0 is always
/// run-coded).
const SYM_RUNA: usize = 0;
const SYM_RUNB: usize = 1;
const NSYM: usize = 257;

/// MTF + zero-RLE encode.
pub fn mtf_rle_encode(data: &[u8]) -> Vec<u16> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    let mut zero_run = 0usize;
    let flush = |run: &mut usize, out: &mut Vec<u16>| {
        // bzip2's bijective base-2 run coding with RUNA/RUNB.
        let mut r = *run;
        while r > 0 {
            if r & 1 == 1 {
                out.push(SYM_RUNA as u16);
                r = (r - 1) >> 1;
            } else {
                out.push(SYM_RUNB as u16);
                r = (r - 2) >> 1;
            }
        }
        *run = 0;
    };
    for &b in data {
        let pos = table.iter().position(|&x| x == b).expect("byte in table");
        if pos == 0 {
            zero_run += 1;
            continue;
        }
        flush(&mut zero_run, &mut out);
        out.push((pos + 1) as u16); // literal symbol = mtf + 1, mtf ≥ 1
        table.copy_within(0..pos, 1);
        table[0] = b;
    }
    flush(&mut zero_run, &mut out);
    out
}

/// Inverse of [`mtf_rle_encode`].
pub fn mtf_rle_decode(symbols: &[u16], out_len: usize) -> Result<Vec<u8>, Error> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(out_len);
    let mut i = 0usize;
    while i < symbols.len() {
        let s = symbols[i] as usize;
        if s == SYM_RUNA || s == SYM_RUNB {
            // Collect the whole run group. A corrupt stream can supply an
            // arbitrarily long group, so the accumulators saturate (the
            // bijective coding doubles `place` each symbol) and the bound
            // check happens before any extension.
            let mut run = 0usize;
            let mut place = 1usize;
            while i < symbols.len() {
                match symbols[i] as usize {
                    SYM_RUNA => run = run.saturating_add(place),
                    SYM_RUNB => run = run.saturating_add(place.saturating_mul(2)),
                    _ => break,
                }
                place = place.saturating_mul(2);
                i += 1;
            }
            if run > out_len.saturating_sub(out.len()) {
                return Err(Error::Corrupt("run overflows block"));
            }
            let b = table[0];
            out.extend(std::iter::repeat_n(b, run));
        } else {
            let mtf = s - 1;
            if mtf > 255 {
                return Err(Error::Corrupt("bad MTF symbol"));
            }
            if out.len() >= out_len {
                return Err(Error::Corrupt("literal overflows block"));
            }
            let b = table[mtf];
            table.copy_within(0..mtf, 1);
            table[0] = b;
            out.push(b);
            i += 1;
        }
    }
    if out.len() != out_len {
        return Err(Error::Corrupt("block length mismatch after MTF/RLE"));
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Block framing: primary index + Huffman-coded symbol stream.
// --------------------------------------------------------------------

fn compress_block(block: &[u8], w: &mut BitWriter) {
    let (bwt, primary) = bwt_forward(block);
    let symbols = mtf_rle_encode(&bwt);
    let mut freqs = vec![0u64; NSYM];
    for &s in &symbols {
        freqs[s as usize] += 1;
    }
    let enc = Encoder::from_freqs(&freqs, MAX_CODE_LEN);
    w.write_bits(primary as u64, 32);
    w.write_bits(symbols.len() as u64, 32);
    for &l in enc.lengths() {
        w.write_bits(l as u64, 4);
    }
    for &s in &symbols {
        enc.write_symbol(w, s as usize);
    }
}

fn decompress_block(r: &mut BitReader<'_>, n: usize, out: &mut Vec<u8>) -> Result<(), Error> {
    let primary = r.read_bits(32)? as usize;
    let nsym = r.read_bits(32)? as usize;
    if nsym > 2 * n + 64 {
        return Err(Error::Corrupt("implausible symbol count"));
    }
    let mut lengths = vec![0u32; NSYM];
    for l in lengths.iter_mut() {
        *l = r.read_bits(4)? as u32;
    }
    let dec = Decoder::from_lengths(&lengths)?;
    let mut symbols = Vec::with_capacity(nsym);
    for _ in 0..nsym {
        symbols.push(dec.read_symbol(r)? as u16);
    }
    let bwt = mtf_rle_decode(&symbols, n)?;
    out.extend(bwt_inverse(&bwt, primary)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let z = bwt_compress(data);
        assert_eq!(bwt_decompress(&z).unwrap(), data, "roundtrip failed");
        z.len()
    }

    #[test]
    fn bwt_known_example() {
        // The classic: "banana" rotations sorted give BWT "nnbaaa".
        let (bwt, primary) = bwt_forward(b"banana");
        assert_eq!(&bwt, b"nnbaaa");
        assert_eq!(bwt_inverse(&bwt, primary).unwrap(), b"banana");
    }

    #[test]
    fn bwt_inverse_of_forward_various() {
        for data in [
            b"".as_slice(),
            b"a",
            b"aaaa",
            b"abracadabra",
            b"mississippi",
        ] {
            let (bwt, primary) = bwt_forward(data);
            assert_eq!(bwt_inverse(&bwt, primary).unwrap(), data);
        }
    }

    #[test]
    fn mtf_rle_roundtrip() {
        let data = b"aaaabbbcccdddaaaa___zzzz";
        let symbols = mtf_rle_encode(data);
        assert_eq!(mtf_rle_decode(&symbols, data.len()).unwrap(), data);
        // Runs shrink the stream.
        assert!(symbols.len() < data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"xy");
    }

    #[test]
    fn text_compresses_well() {
        let data = "the community earth system model writes history files. ".repeat(100);
        let n = roundtrip(data.as_bytes());
        assert!(n < data.len() / 4, "{n} vs {}", data.len());
    }

    #[test]
    fn random_bytes_roundtrip() {
        let mut state = 123u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn float_bytes_roundtrip() {
        let floats: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.01).sin() * 300.0).collect();
        let data: Vec<u8> = floats.iter().flat_map(|v| v.to_le_bytes()).collect();
        roundtrip(&data);
    }

    #[test]
    fn multi_block_input() {
        let data: Vec<u8> = (0..BLOCK_SIZE + 1000).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = b"hello hello hello hello".repeat(20);
        let z = bwt_compress(&data);
        for cut in [0usize, 4, 8, z.len() / 2] {
            assert!(bwt_decompress(&z[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_primary_index_detected() {
        let data = b"some data to transform and compress".repeat(10);
        let mut z = bwt_compress(&data);
        // Corrupt the primary index field (first block header after the
        // 8-byte length).
        z[9] ^= 0xFF;
        match bwt_decompress(&z) {
            Err(_) => {}
            Ok(out) => assert_ne!(out, data, "corruption silently ignored"),
        }
    }
}
