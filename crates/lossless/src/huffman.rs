//! Canonical Huffman coding with length-limited codes.
//!
//! Code lengths are derived from symbol frequencies with the package-merge
//! algorithm (optimal under a maximum-length constraint), then assigned
//! canonically so only the length vector needs to be transmitted. Decoding
//! uses a flat lookup table over [`MAX_CODE_LEN`] bits.

use crate::bitio::{BitReader, BitWriter};
use crate::Error;

/// Maximum code length; 15 matches DEFLATE and keeps the decode table at
/// 32,768 entries.
pub const MAX_CODE_LEN: u32 = 15;

/// Compute length-limited Huffman code lengths for `freqs` (zero frequency →
/// zero length, i.e. symbol absent). Lengths never exceed `max_len`.
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    assert!((1..=MAX_CODE_LEN).contains(&max_len));
    let n = freqs.len();
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u32; n];
    match active.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs a 1-bit code to be decodable.
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    assert!(
        (1usize << max_len) >= active.len(),
        "alphabet of {} symbols cannot fit in {max_len}-bit codes",
        active.len()
    );

    // Package-merge. Packages are Copy nodes — a leaf (index into
    // `active`) or a pair of indices into the previous level's sorted
    // array — so each level is a flat clone + stable sort with no
    // per-package allocation. Construction order (leaves first, then
    // pairs) and the stable sort keep tie-breaking, and therefore the
    // resulting length vector, identical to the list-of-leaves form.
    #[derive(Clone, Copy)]
    enum Node {
        Leaf(u32),
        Pair(u32, u32),
    }
    let leaf_items: Vec<(u64, Node)> = active
        .iter()
        .enumerate()
        .map(|(j, &i)| (freqs[i], Node::Leaf(j as u32)))
        .collect();

    let mut levels: Vec<Vec<(u64, Node)>> = Vec::with_capacity(max_len as usize);
    for _level in 0..max_len {
        let mut merged = leaf_items.clone();
        if let Some(prev) = levels.last() {
            for (k, pair) in prev.chunks_exact(2).enumerate() {
                merged.push((pair[0].0 + pair[1].0, Node::Pair(2 * k as u32, 2 * k as u32 + 1)));
            }
        }
        merged.sort_by_key(|p| p.0);
        levels.push(merged);
    }

    // Take the cheapest 2(n-1) packages of the last level; each leaf
    // reachable from a taken package adds one to its symbol's length.
    // Iterative traversal over (level, index) pairs.
    let take = 2 * (active.len() - 1);
    let top = levels.len() - 1;
    let mut stack: Vec<(usize, u32)> = (0..take).map(|i| (top, i as u32)).collect();
    while let Some((level, idx)) = stack.pop() {
        match levels[level][idx as usize].1 {
            Node::Leaf(j) => lengths[active[j as usize]] += 1,
            Node::Pair(a, b) => {
                stack.push((level - 1, a));
                stack.push((level - 1, b));
            }
        }
    }
    debug_assert!(lengths.iter().all(|&l| l <= max_len));
    lengths
}

/// Assign canonical codes to `lengths`. Returns `codes[i]` = bit-reversed
/// code ready for LSB-first writing (length `lengths[i]`).
pub fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c.reverse_bits() >> (32 - l)
            }
        })
        .collect()
}

/// Encoder: canonical codes + lengths for an alphabet.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lengths: Vec<u32>,
}

impl Encoder {
    /// Build an encoder from symbol frequencies.
    pub fn from_freqs(freqs: &[u64], max_len: u32) -> Self {
        let lengths = code_lengths(freqs, max_len);
        let codes = canonical_codes(&lengths);
        Encoder { codes, lengths }
    }

    /// Build from explicit code lengths (as read from a stream header).
    pub fn from_lengths(lengths: &[u32]) -> Self {
        let codes = canonical_codes(lengths);
        Encoder { codes, lengths: lengths.to_vec() }
    }

    /// The code lengths (what a container format serializes).
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// Emit `symbol`'s code. Panics if the symbol has no code.
    pub fn write_symbol(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(self.codes[symbol] as u64, len);
    }

    /// Length in bits of `symbol`'s code (0 if absent).
    pub fn symbol_len(&self, symbol: usize) -> u32 {
        self.lengths[symbol]
    }

    /// The `(code, length)` pair for `symbol`, with the code already
    /// bit-reversed for LSB-first writing. Lets callers pack a symbol
    /// together with its extra bits into a single bit-write.
    #[inline]
    pub fn code(&self, symbol: usize) -> (u32, u32) {
        (self.codes[symbol], self.lengths[symbol])
    }
}

/// Table-driven decoder for canonical codes.
#[derive(Debug)]
pub struct Decoder {
    /// `table[bits] = (symbol, code_len)`; index is the next `max` stream
    /// bits (LSB-first).
    table: Vec<(u16, u8)>,
    max: u32,
}

impl Decoder {
    /// Build a decoder from code lengths. Returns an error for
    /// over-subscribed (invalid) codes; incomplete codes are accepted and
    /// undefined entries decode to an error at read time.
    pub fn from_lengths(lengths: &[u32]) -> Result<Self, Error> {
        let max = lengths.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return Ok(Decoder { table: Vec::new(), max: 0 });
        }
        if max > MAX_CODE_LEN {
            return Err(Error::Corrupt("code length exceeds maximum"));
        }
        // Kraft check for over-subscription.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - l))
            .sum();
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(Error::Corrupt("over-subscribed Huffman code"));
        }
        let codes = canonical_codes(lengths);
        let mut table = vec![(u16::MAX, 0u8); 1usize << max];
        for (sym, (&len, &code)) in lengths.iter().zip(&codes).enumerate() {
            if len == 0 {
                continue;
            }
            // The code occupies every table slot whose low `len` bits equal
            // `code` (code is already bit-reversed for LSB-first order).
            let step = 1usize << len;
            let mut idx = code as usize;
            while idx < table.len() {
                table[idx] = (sym as u16, len as u8);
                idx += step;
            }
        }
        Ok(Decoder { table, max })
    }

    /// Decode one symbol.
    pub fn read_symbol(&self, r: &mut BitReader<'_>) -> Result<usize, Error> {
        if self.max == 0 {
            return Err(Error::Corrupt("empty Huffman alphabet"));
        }
        // Peek up to `max` bits; near stream end fewer may remain, so fall
        // back to bit-by-bit narrowing.
        let avail = self.max;
        match r.read_bits(avail) {
            Ok(bits) => {
                let (sym, len) = self.table[bits as usize];
                if sym == u16::MAX {
                    return Err(Error::Corrupt("invalid Huffman code"));
                }
                // Push back the unconsumed bits by re-reading: BitReader has
                // no unread; instead we re-buffer via a small shim below.
                // To keep the hot path allocation-free, BitReader exposes
                // exact consumption through read_bits only, so we emulate
                // unread with the `unread` helper.
                r.unread_bits(bits >> len, avail - len as u32);
                Ok(sym as usize)
            }
            Err(_) => {
                // Slow path: narrow bit by bit.
                let mut code = 0u64;
                for n in 0..self.max {
                    code |= (r.read_bit()? as u64) << n;
                    // Check if any symbol matches at this length by probing
                    // the table with zero padding: valid iff the entry's
                    // length equals n+1.
                    let probe = code as usize & ((1usize << self.max) - 1);
                    let (sym, len) = self.table[probe];
                    if sym != u16::MAX && len as u32 == n + 1 {
                        return Ok(sym as usize);
                    }
                }
                Err(Error::Corrupt("invalid Huffman code at stream end"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::{BitReader, BitWriter};

    fn roundtrip(freqs: &[u64], message: &[usize]) {
        let enc = Encoder::from_freqs(freqs, MAX_CODE_LEN);
        let mut w = BitWriter::new();
        for &s in message {
            enc.write_symbol(&mut w, s);
        }
        let bytes = w.finish();
        let dec = Decoder::from_lengths(enc.lengths()).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(dec.read_symbol(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn simple_alphabet_roundtrip() {
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let msg: Vec<usize> = (0..6).cycle().take(100).collect();
        roundtrip(&freqs, &msg);
    }

    #[test]
    fn single_symbol_alphabet() {
        let freqs = [0u64, 100, 0];
        roundtrip(&freqs, &[1, 1, 1, 1]);
    }

    #[test]
    fn skewed_frequencies_respect_length_limit() {
        // Fibonacci-like frequencies force long codes in unlimited Huffman.
        let mut freqs = vec![0u64; 24];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs, 15);
        assert!(lengths.iter().all(|&l| l <= 15 && l > 0));
        // Kraft equality for a complete code.
        let kraft: f64 = lengths.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft {kraft}");
    }

    #[test]
    fn package_merge_is_optimal_when_unconstrained() {
        // For frequencies 1,1,2,4: optimal lengths 3,3,2,1 (cost 14 bits).
        let lengths = code_lengths(&[1, 1, 2, 4], 15);
        let cost: u64 = [1u64, 1, 2, 4]
            .iter()
            .zip(&lengths)
            .map(|(f, &l)| f * l as u64)
            .sum();
        assert_eq!(cost, 14);
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three 1-bit codes cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn zero_freq_symbols_get_no_code() {
        let lengths = code_lengths(&[5, 0, 3, 0], 15);
        assert_eq!(lengths[1], 0);
        assert_eq!(lengths[3], 0);
        assert!(lengths[0] > 0 && lengths[2] > 0);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = code_lengths(&[10, 9, 8, 7, 6, 5, 4, 3, 2, 1], 15);
        let codes = canonical_codes(&lengths);
        // Reverse back to MSB-first and check prefix-freeness pairwise.
        let msb: Vec<(u32, u32)> = lengths
            .iter()
            .zip(&codes)
            .filter(|(&l, _)| l > 0)
            .map(|(&l, &c)| (l, c.reverse_bits() >> (32 - l)))
            .collect();
        for (i, &(li, ci)) in msb.iter().enumerate() {
            for (j, &(lj, cj)) in msb.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, long) = if li <= lj { ((li, ci), (lj, cj)) } else { ((lj, cj), (li, ci)) };
                assert!(
                    long.1 >> (long.0 - short.0) != short.1,
                    "code {i} prefixes {j}"
                );
            }
        }
    }

    #[test]
    fn large_random_alphabet_roundtrip() {
        // Deterministic pseudo-random frequencies.
        let mut state = 0x12345678u64;
        let mut freqs = vec![0u64; 300];
        for f in freqs.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *f = state >> 50; // some zeros likely
        }
        freqs[0] = 1; // ensure at least one active symbol
        let active: Vec<usize> = (0..300).filter(|&i| freqs[i] > 0).collect();
        let msg: Vec<usize> = active.iter().cycle().take(5000).copied().collect();
        roundtrip(&freqs, &msg);
    }
}
