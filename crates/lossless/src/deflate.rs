//! A DEFLATE-like compressed container over the LZ77 token stream.
//!
//! The framing is custom (we only need self-interoperability), but the
//! coding machinery is DEFLATE's: dynamic canonical-Huffman blocks over a
//! literal/length alphabet plus a distance alphabet with extra bits, and a
//! stored-block fallback for incompressible stretches.
//!
//! Stream layout:
//!
//! ```text
//! u64 LE  uncompressed length
//! blocks: 1 bit final, 1 bit kind (0 = stored, 1 = huffman)
//!   stored : byte-align, u32 LE length, raw bytes
//!   huffman: 286×4-bit lit/len code lengths, 30×4-bit dist code lengths,
//!            tokens..., end-of-block symbol (256)
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{Decoder, Encoder};
use crate::lz77::{self, Effort, Token};
use crate::Error;

/// Compression effort level (mirrors zlib's fast/default/best).
pub type Level = Effort;

/// Literal/length alphabet size: 256 literals + EOB + 29 length codes.
const NLIT: usize = 286;
/// End-of-block symbol.
const EOB: usize = 256;
/// Distance alphabet size.
const NDIST: usize = 30;
/// Tokens per dynamic block.
const BLOCK_TOKENS: usize = 1 << 15;

/// DEFLATE length-code table: `(base, extra_bits)` for codes 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
];

/// DEFLATE distance-code table: `(base, extra_bits)` for codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4),
    (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8),
    (1025, 9), (1537, 9), (2049, 10), (3073, 10),
    (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

/// `LEN_CODE_OF[len]` = index into [`LEN_TABLE`] of the last base ≤ `len`,
/// for `len` in 3..=258. Replaces a per-token binary search in the hot
/// encode loops.
const LEN_CODE_OF: [u8; 259] = {
    let mut t = [0u8; 259];
    let mut len = 3usize;
    while len <= 258 {
        let mut idx = 0usize;
        while idx + 1 < LEN_TABLE.len() && LEN_TABLE[idx + 1].0 as usize <= len {
            idx += 1;
        }
        t[len] = idx as u8;
        len += 1;
    }
    t
};

/// Distance-code lookup split the zlib way: slots 0..256 cover `dist - 1`
/// for distances ≤ 256; slots 256..512 cover `(dist - 1) >> 7` for larger
/// distances (every code ≥ 16 spans whole 128-aligned ranges, so the
/// shifted index is unambiguous).
const DIST_CODE_OF: [u8; 512] = {
    let mut t = [0u8; 512];
    let mut s = 0usize;
    while s < 512 {
        // Representative distance for the slot: the smallest one mapping
        // to it. High slots cover [k·128 + 1, (k+1)·128] and every code
        // ≥ 16 spans whole such ranges, so one probe covers the slot.
        let d = if s < 256 { s + 1 } else { ((s - 256) << 7) + 1 };
        let mut idx = 0usize;
        while idx + 1 < DIST_TABLE.len() && DIST_TABLE[idx + 1].0 as usize <= d {
            idx += 1;
        }
        t[s] = idx as u8;
        s += 1;
    }
    t
};

/// Map a match length (3..=258) to `(code_index, extra_value, extra_bits)`.
#[inline]
fn length_code(len: u16) -> (usize, u16, u8) {
    debug_assert!((3..=258).contains(&len));
    let idx = LEN_CODE_OF[len as usize] as usize;
    let (base, extra) = LEN_TABLE[idx];
    (257 + idx, len - base, extra)
}

/// Map a distance (1..=32768) to `(code_index, extra_value, extra_bits)`.
#[inline]
fn dist_code(dist: u16) -> (usize, u16, u8) {
    debug_assert!(dist >= 1);
    let d = dist as usize - 1;
    let idx = if d < 256 { DIST_CODE_OF[d] } else { DIST_CODE_OF[256 + (d >> 7)] } as usize;
    let (base, extra) = DIST_TABLE[idx];
    (idx, dist - base, extra)
}

/// Compress `data` at the given effort level.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let _s = cc_obs::span("deflate.encode");
    let tokens = lz77::tokenize(data, level);
    let mut w = BitWriter::new();
    // Length header, byte-aligned by construction.
    w.write_bits(data.len() as u64 & 0xFFFF_FFFF, 32);
    w.write_bits((data.len() as u64) >> 32, 32);

    if tokens.is_empty() {
        // Zero-length payload still needs one (final, stored, empty) block.
        w.write_bit(true);
        w.write_bit(false);
        w.align_byte();
        w.write_bits(0, 32);
        return w.finish();
    }

    // Chunk tokens into blocks; remember the byte extent of each chunk so a
    // stored fallback can copy the exact range.
    let mut start_byte = 0usize;
    let mut t0 = 0usize;
    while t0 < tokens.len() {
        let t1 = (t0 + BLOCK_TOKENS).min(tokens.len());
        let chunk = &tokens[t0..t1];
        let nbytes: usize = chunk
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        let is_final = t1 == tokens.len();
        write_block(&mut w, chunk, &data[start_byte..start_byte + nbytes], is_final);
        start_byte += nbytes;
        t0 = t1;
    }
    w.finish()
}

fn write_block(w: &mut BitWriter, tokens: &[Token], raw: &[u8], is_final: bool) {
    // Gather symbol frequencies.
    let mut lit_freq = [0u64; NLIT];
    let mut dist_freq = [0u64; NDIST];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_code(len).0] += 1;
                dist_freq[dist_code(dist).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;

    let lit_enc = Encoder::from_freqs(&lit_freq, crate::huffman::MAX_CODE_LEN);
    let dist_enc = Encoder::from_freqs(&dist_freq, crate::huffman::MAX_CODE_LEN);

    // Estimate the dynamic-block cost and compare with stored. Every
    // token's bit cost is its symbol's code length plus the code's fixed
    // extra-bit count, so summing over the (tiny) alphabets instead of the
    // token stream gives the same total. The EOB count added above folds
    // its code length in too.
    let header_bits = 2 + (NLIT + NDIST) * 4;
    let mut body_bits = 0u64;
    for (sym, &f) in lit_freq.iter().enumerate() {
        if f > 0 {
            let extra = if sym > EOB { LEN_TABLE[sym - 257].1 as u32 } else { 0 };
            body_bits += f * (lit_enc.symbol_len(sym) + extra) as u64;
        }
    }
    for (sym, &f) in dist_freq.iter().enumerate() {
        if f > 0 {
            body_bits += f * (dist_enc.symbol_len(sym) + DIST_TABLE[sym].1 as u32) as u64;
        }
    }
    let dynamic_bits = header_bits as u64 + body_bits;
    let stored_bits = 2 + 8 + 32 + raw.len() as u64 * 8; // worst-case align

    w.write_bit(is_final);
    if stored_bits < dynamic_bits {
        w.write_bit(false); // stored
        w.align_byte();
        w.write_bits(raw.len() as u64, 32);
        w.write_bytes(raw);
        return;
    }
    w.write_bit(true); // huffman
    for &l in lit_enc.lengths() {
        w.write_bits(l as u64, 4);
    }
    for &l in dist_enc.lengths() {
        w.write_bits(l as u64, 4);
    }
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_enc.write_symbol(w, b as usize),
            Token::Match { len, dist } => {
                // Pack length code + extra + distance code + extra into one
                // LSB-first write: ≤ 15 + 5 + 15 + 13 = 48 bits, the same
                // bit sequence four separate writes would produce.
                let (lc, lv, le) = length_code(len);
                let (dc, dv, de) = dist_code(dist);
                let (lcode, llen) = lit_enc.code(lc);
                let (dcode, dlen) = dist_enc.code(dc);
                let mut bits = lcode as u64;
                let mut n = llen;
                bits |= (lv as u64) << n;
                n += le as u32;
                bits |= (dcode as u64) << n;
                n += dlen;
                bits |= (dv as u64) << n;
                n += de as u32;
                w.write_bits(bits, n);
            }
        }
    }
    lit_enc.write_symbol(w, EOB);
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    decompress_with_cap(data, usize::MAX)
}

/// Like [`decompress`], but rejects any stream whose declared output
/// length exceeds `max_out` *before* allocating. Callers that know the
/// exact size a section must decode to (the archive reader, for one)
/// pass it here so a damaged length field can never cost an oversized
/// allocation, independent of the generic expansion heuristics below.
pub fn decompress_capped(data: &[u8], max_out: usize) -> Result<Vec<u8>, Error> {
    decompress_with_cap(data, max_out)
}

fn decompress_with_cap(data: &[u8], max_out: usize) -> Result<Vec<u8>, Error> {
    let _s = cc_obs::span("deflate.decode");
    let mut r = BitReader::new(data);
    let lo = r.read_bits(32)?;
    let hi = r.read_bits(32)?;
    let total = (lo | (hi << 32)) as usize;
    // Refuse absurd headers before allocating: a Huffman match token costs
    // at least one bit and emits at most 258 bytes, so no honest stream
    // expands beyond 258 bytes per input bit (2064 per byte).
    if total > data.len().saturating_mul(2064) {
        return Err(Error::Corrupt("declared length exceeds maximum expansion"));
    }
    if total > max_out {
        return Err(Error::Corrupt("declared length exceeds caller cap"));
    }
    // Pre-allocation from the (still untrusted) header is capped at 16x
    // the input; growth past that only follows actually-decoded content.
    let cap = data.len().saturating_mul(16);
    if total > cap {
        cc_obs::counter_inc("lossless.alloc_cap_hits");
    }
    let mut out: Vec<u8> = Vec::with_capacity(total.min(cap));

    loop {
        let is_final = r.read_bit()?;
        let is_huffman = r.read_bit()?;
        if !is_huffman {
            r.align_byte();
            let len = r.read_bits(32)? as usize;
            if out.len() + len > total {
                return Err(Error::Corrupt("stored block overruns declared length"));
            }
            // Check availability before the bulk resize so a damaged
            // length can't trigger an oversized allocation.
            if len > data.len().saturating_sub(r.bits_consumed() / 8) {
                return Err(Error::UnexpectedEof);
            }
            let start = out.len();
            out.resize(start + len, 0);
            r.read_bytes(&mut out[start..])?;
        } else {
            let mut lit_lengths = [0u32; NLIT];
            for l in lit_lengths.iter_mut() {
                *l = r.read_bits(4)? as u32;
            }
            let mut dist_lengths = [0u32; NDIST];
            for l in dist_lengths.iter_mut() {
                *l = r.read_bits(4)? as u32;
            }
            let lit_dec = Decoder::from_lengths(&lit_lengths)?;
            let dist_dec = Decoder::from_lengths(&dist_lengths)?;
            loop {
                let sym = lit_dec.read_symbol(&mut r)?;
                if sym == EOB {
                    break;
                }
                if sym < 256 {
                    if out.len() >= total {
                        return Err(Error::Corrupt("literal overruns declared length"));
                    }
                    out.push(sym as u8);
                } else {
                    let li = sym - 257;
                    if li >= LEN_TABLE.len() {
                        return Err(Error::Corrupt("invalid length code"));
                    }
                    let (base, extra) = LEN_TABLE[li];
                    let len = base as usize + r.read_bits(extra as u32)? as usize;
                    let dsym = dist_dec.read_symbol(&mut r)?;
                    if dsym >= DIST_TABLE.len() {
                        return Err(Error::Corrupt("invalid distance code"));
                    }
                    let (dbase, dextra) = DIST_TABLE[dsym];
                    let dist = dbase as usize + r.read_bits(dextra as u32)? as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(Error::Corrupt("distance exceeds output"));
                    }
                    if out.len() + len > total {
                        return Err(Error::Corrupt("match overruns declared length"));
                    }
                    let start = out.len() - dist;
                    if dist >= len {
                        out.extend_from_within(start..start + len);
                    } else {
                        for k in 0..len {
                            let b = out[start + k];
                            out.push(b);
                        }
                    }
                }
            }
        }
        if is_final {
            break;
        }
    }
    if out.len() != total {
        return Err(Error::Corrupt("declared length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let z = compress(data, Level::Default);
        let back = decompress(&z).unwrap();
        assert_eq!(data, &back[..]);
        z.len()
    }

    #[test]
    fn empty_input() {
        assert!(roundtrip(b"") > 0);
    }

    #[test]
    fn short_inputs() {
        roundtrip(b"a");
        roundtrip(b"climate");
        roundtrip(&[0u8; 3]);
    }

    #[test]
    fn text_compresses() {
        let data = "the community earth system model ".repeat(200);
        let n = roundtrip(data.as_bytes());
        assert!(n < data.len() / 4, "{n} vs {}", data.len());
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        let mut state = 0xDEADBEEFu64;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let n = roundtrip(&data);
        // Stored fallback bounds expansion to a tiny framing overhead.
        assert!(n < data.len() + data.len() / 100 + 64, "{n} vs {}", data.len());
    }

    #[test]
    fn all_levels_roundtrip() {
        let data = b"abcabcabcabc_the_rest_is_different_xyzxyzxyz".repeat(50);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let z = compress(&data, level);
            assert_eq!(decompress(&z).unwrap(), data);
        }
    }

    #[test]
    fn multi_block_input() {
        // Force several blocks (> BLOCK_TOKENS tokens of literals).
        let mut state = 7u64;
        let data: Vec<u8> = (0..200_000)
            .map(|i| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((state >> 40) as u8).wrapping_add((i / 1000) as u8)
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn zeros_compress_hugely() {
        let data = vec![0u8; 100_000];
        let n = roundtrip(&data);
        assert!(n < 1000, "zeros compressed to {n}");
    }

    #[test]
    fn truncated_stream_errors() {
        let data = b"hello world hello world hello world".repeat(10);
        let z = compress(&data, Level::Default);
        for cut in [0usize, 4, 8, z.len() / 2, z.len() - 1] {
            let r = decompress(&z[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_header_errors() {
        let mut z = compress(b"some data to compress", Level::Default);
        // Implausible length.
        for b in z.iter_mut().take(8) {
            *b = 0xFF;
        }
        assert!(decompress(&z).is_err());
    }

    #[test]
    fn length_code_table_is_exhaustive() {
        for len in 3..=258u16 {
            let (code, extra_v, extra_b) = length_code(len);
            assert!((257..286).contains(&code));
            let (base, eb) = LEN_TABLE[code - 257];
            assert_eq!(eb, extra_b);
            assert_eq!(base + extra_v, len);
            assert!(extra_v < (1 << extra_b.max(1)) || extra_b == 0 && extra_v == 0);
        }
    }

    #[test]
    fn dist_code_table_is_exhaustive() {
        for dist in 1..=32768u16 {
            let (code, extra_v, extra_b) = dist_code(dist);
            assert!(code < 30);
            let (base, eb) = DIST_TABLE[code];
            assert_eq!(eb, extra_b);
            assert_eq!(base as u32 + extra_v as u32, dist as u32);
        }
    }
}
