//! LZ77 match finding with hash chains over a 32 KiB window.
//!
//! Produces the token stream consumed by [`crate::deflate`]: literals and
//! `(length, distance)` back-references with DEFLATE's limits (match length
//! 3..=258, distance 1..=32768).

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;
/// Sliding-window size; distances never exceed this.
pub const WINDOW: usize = 32 * 1024;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match { len: u16, dist: u16 },
}

/// Match-finding effort. Chain lengths trade speed for ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Short chains, no lazy matching.
    Fast,
    /// Longer chains with one-step lazy matching (zlib level ~6).
    Default,
    /// Exhaustive-ish chains with lazy matching.
    Best,
}

impl Effort {
    fn max_chain(self) -> usize {
        match self {
            Effort::Fast => 8,
            Effort::Default => 64,
            Effort::Best => 512,
        }
    }

    fn lazy(self) -> bool {
        !matches!(self, Effort::Fast)
    }

    /// Matches at least this long stop the search early.
    fn nice_length(self) -> usize {
        match self {
            Effort::Fast => 32,
            Effort::Default => 128,
            Effort::Best => MAX_MATCH,
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len`, with `b + max_len <= data.len()` and `a < b`. Compares
/// whole 64-bit words and locates the first differing byte with a
/// trailing-zero count, so runs extend eight bytes per iteration; the
/// result is exactly the byte-loop answer.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max_len {
        let wa = u64::from_le_bytes(data[a + l..a + l + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(data[b + l..b + l + 8].try_into().unwrap());
        let x = wa ^ wb;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max_len && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    // One unaligned 32-bit load masked to the low 3 bytes — the same value
    // the byte-assembled form produces, so every chain decision (and thus
    // the token stream) is unchanged. The byte fallback only runs within
    // 4 bytes of the end.
    let v = if i + 4 <= data.len() {
        u32::from_le_bytes(data[i..i + 4].try_into().unwrap()) & 0x00FF_FFFF
    } else {
        (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16)
    };
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `data` with hash-chain match finding.
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h]: most recent position with hash h (+1; 0 = none).
    // prev[i & (WINDOW-1)]: previous position in i's chain (+1; 0 = none).
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; WINDOW];
    let max_chain = effort.max_chain();
    let nice = effort.nice_length();

    // `hash` is the precomputed hash3 at `pos` (the main loop computes it
    // once per position and shares it with the insert at the same spot).
    let find_match = |data: &[u8],
                      head: &[u32],
                      prev: &[u32],
                      pos: usize,
                      hash: usize|
     -> Option<(usize, usize)> {
        let mut cand = head[hash] as usize;
        let max_len = MAX_MATCH.min(data.len() - pos);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        // Quick-reject byte after the current best; loop-invariant between
        // improvements (in bounds: best_len < max_len ≤ data.len() - pos).
        let mut scan_byte = data[pos + best_len];
        while cand > 0 && chain < max_chain {
            let c = cand - 1;
            if c >= pos || pos - c > WINDOW {
                break;
            }
            if data[c + best_len] == scan_byte {
                let l = match_len(data, c, pos, max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = pos - c;
                    if l >= nice || best_len >= max_len {
                        break;
                    }
                    scan_byte = data[pos + best_len];
                }
            }
            cand = prev[c & (WINDOW - 1)] as usize;
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    // Insert with the hash already in hand (caller guarantees
    // `i + MIN_MATCH <= data.len()`).
    let insert_at = |head: &mut [u32], prev: &mut [u32], h: usize, i: usize| {
        prev[i & (WINDOW - 1)] = head[h];
        head[h] = (i + 1) as u32;
    };
    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i & (WINDOW - 1)] = head[h];
            head[h] = (i + 1) as u32;
        }
    };

    let mut i = 0usize;
    let mut pending: Option<(usize, usize)> = None; // lazy-held match at i-1
    while i < n {
        let tail = i + MIN_MATCH > n;
        let h = if tail { 0 } else { hash3(data, i) };
        let cur = if tail { None } else { find_match(data, &head, &prev, i, h) };
        if let Some((plen, pdist)) = pending {
            // Lazy evaluation: if the current match is strictly better,
            // emit a literal for i-1 and keep searching from i.
            let cur_better = cur.map(|(l, _)| l > plen).unwrap_or(false);
            if cur_better {
                tokens.push(Token::Literal(data[i - 1]));
                pending = cur;
                insert_at(&mut head, &mut prev, h, i);
                i += 1;
                continue;
            } else {
                // Emit the pending match starting at i-1.
                tokens.push(Token::Match { len: plen as u16, dist: pdist as u16 });
                // Insert hash entries for the matched span (minus the one
                // already inserted at i-1 and the probe at i).
                let end = (i - 1) + plen;
                if !tail {
                    insert_at(&mut head, &mut prev, h, i);
                }
                for j in i + 1..end {
                    insert(&mut head, &mut prev, data, j);
                }
                pending = None;
                i = end;
                continue;
            }
        }
        match cur {
            Some((len, dist)) => {
                if effort.lazy() && len < nice && i + 1 < n {
                    pending = Some((len, dist));
                    insert_at(&mut head, &mut prev, h, i);
                    i += 1;
                } else {
                    tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
                    let end = i + len;
                    insert_at(&mut head, &mut prev, h, i);
                    for j in i + 1..end {
                        insert(&mut head, &mut prev, data, j);
                    }
                    i = end;
                }
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                if !tail {
                    insert_at(&mut head, &mut prev, h, i);
                }
                i += 1;
            }
        }
    }
    if let Some((plen, pdist)) = pending {
        // Input ended while holding a match that starts at n-? — the match
        // was found at position i-1 and i == n, so it is still valid.
        tokens.push(Token::Match { len: plen as u16, dist: pdist as u16 });
        // Tokens after this would over-run; trim the tail literals the
        // match already covers. The main loop structure guarantees none
        // were emitted, so nothing to do.
    }
    tokens
}

/// Expand a token stream back into bytes. `size_hint` preallocates.
pub fn expand(tokens: &[Token], size_hint: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size_hint);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                assert!(dist >= 1 && dist <= out.len(), "invalid distance");
                let start = out.len() - dist;
                if dist >= len {
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping copies (dist < len) must replicate bytes
                    // produced earlier in this same match.
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], effort: Effort) {
        let tokens = tokenize(data, effort);
        let back = expand(&tokens, data.len());
        assert_eq!(data, &back[..]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            roundtrip(b"", effort);
            roundtrip(b"a", effort);
            roundtrip(b"ab", effort);
            roundtrip(b"abc", effort);
        }
    }

    #[test]
    fn repeated_text_produces_matches() {
        let data = b"the quick brown fox. the quick brown fox. the quick brown fox.";
        let tokens = tokenize(data, Effort::Default);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        roundtrip(data, Effort::Default);
    }

    #[test]
    fn run_of_identical_bytes_uses_overlapping_match() {
        let data = vec![7u8; 1000];
        let tokens = tokenize(&data, Effort::Default);
        // A run should compress to a couple of tokens (literal + overlapping match).
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        assert_eq!(expand(&tokens, data.len()), data);
    }

    #[test]
    fn pseudo_random_roundtrip_all_efforts() {
        let mut state = 42u64;
        let data: Vec<u8> = (0..20000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            roundtrip(&data, effort);
        }
    }

    #[test]
    fn structured_float_bytes_roundtrip() {
        let floats: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.01).sin()).collect();
        let data: Vec<u8> = floats.iter().flat_map(|v| v.to_le_bytes()).collect();
        roundtrip(&data, Effort::Default);
    }

    #[test]
    fn long_distance_matches_within_window() {
        // Two identical 1 KiB chunks separated by 30 KiB of unique filler.
        let chunk: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let filler: Vec<u8> = (0..30_000u32).map(|i| (i * 7919 % 256) as u8).collect();
        let mut data = chunk.clone();
        data.extend(&filler);
        data.extend(&chunk);
        let tokens = tokenize(&data, Effort::Best);
        assert_eq!(expand(&tokens, data.len()), data);
    }

    #[test]
    fn match_lengths_and_distances_in_bounds() {
        let data: Vec<u8> = std::iter::repeat_n(b"abcdefgh".as_slice(), 500)
            .flatten()
            .copied()
            .collect();
        for t in tokenize(&data, Effort::Default) {
            if let Token::Match { len, dist } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
                assert!(dist as usize >= 1 && dist as usize <= WINDOW);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn expand_rejects_bad_distance() {
        expand(&[Token::Match { len: 3, dist: 5 }], 8);
    }
}
