//! Property tests for the lossless substrate.

use cc_lossless::bitio::{BitReader, BitWriter};
use cc_lossless::huffman::{code_lengths, Decoder, Encoder, MAX_CODE_LEN};
use cc_lossless::lz77::{expand, tokenize, Effort};
use cc_lossless::{compress, decompress, shuffle, unshuffle, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn deflate_roundtrip(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let z = compress(&data, Level::Default);
        prop_assert_eq!(decompress(&z).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..64),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let z = compress(&data, Level::Best);
        prop_assert_eq!(decompress(&z).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
    }

    #[test]
    fn truncation_never_panics(data in prop::collection::vec(any::<u8>(), 1..2048), cut in any::<prop::sample::Index>()) {
        let z = compress(&data, Level::Fast);
        let cut = cut.index(z.len());
        let _ = decompress(&z[..cut]);
    }

    #[test]
    fn shuffle_is_inverse(data in prop::collection::vec(any::<u8>(), 0..4096), esize in 1usize..12) {
        prop_assert_eq!(unshuffle(&shuffle(&data, esize), esize), data);
    }

    #[test]
    fn lz77_roundtrip_all_efforts(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            let tokens = tokenize(&data, effort);
            prop_assert_eq!(expand(&tokens, data.len()), data.clone());
        }
    }

    #[test]
    fn bitio_roundtrip(values in prop::collection::vec((any::<u64>(), 1u32..57), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v & ((1u64 << n) - 1), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            prop_assert_eq!(r.read_bits(n).unwrap(), v & ((1u64 << n) - 1));
        }
    }

    #[test]
    fn rice_roundtrip(values in prop::collection::vec(any::<u64>(), 0..200), k in 0u32..20) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_rice(v, k);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.read_rice(k).unwrap(), v);
        }
    }

    #[test]
    fn huffman_lengths_satisfy_kraft(freqs in prop::collection::vec(0u64..1_000_000, 2..300)) {
        let lengths = code_lengths(&freqs, MAX_CODE_LEN);
        let active = freqs.iter().filter(|&&f| f > 0).count();
        if active >= 2 {
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-(l as i32)))
                .sum();
            prop_assert!(kraft <= 1.0 + 1e-9, "kraft {}", kraft);
            // Optimal prefix code on ≥2 symbols is complete.
            prop_assert!(kraft >= 1.0 - 1e-9, "incomplete code: {}", kraft);
        }
    }

    #[test]
    fn huffman_coder_roundtrip(
        freqs in prop::collection::vec(0u64..10_000, 2..64),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..500),
    ) {
        let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        prop_assume!(!active.is_empty());
        let enc = Encoder::from_freqs(&freqs, MAX_CODE_LEN);
        let msg: Vec<usize> = picks.iter().map(|ix| active[ix.index(active.len())]).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            enc.write_symbol(&mut w, s);
        }
        let bytes = w.finish();
        let dec = Decoder::from_lengths(enc.lengths()).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            prop_assert_eq!(dec.read_symbol(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn bwt_pipeline_roundtrip(data in prop::collection::vec(any::<u8>(), 0..6000)) {
        let z = cc_lossless::bwt_compress(&data);
        prop_assert_eq!(cc_lossless::bwt_decompress(&z).unwrap(), data);
    }

    #[test]
    fn bwt_transform_invertible(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let (bwt, primary) = cc_lossless::bwt::bwt_forward(&data);
        prop_assert_eq!(cc_lossless::bwt::bwt_inverse(&bwt, primary).unwrap(), data);
    }

    #[test]
    fn bwt_periodic_inputs(unit in prop::collection::vec(any::<u8>(), 1..8), reps in 1usize..64) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let (bwt, primary) = cc_lossless::bwt::bwt_forward(&data);
        prop_assert_eq!(cc_lossless::bwt::bwt_inverse(&bwt, primary).unwrap(), data);
    }

    #[test]
    fn f32_path_roundtrip(data in prop::collection::vec(any::<f32>(), 0..2000)) {
        // Bit-exact for every representable float, including NaN payloads.
        let z = cc_lossless::compress_f32_shuffled(&data, Level::Default);
        let back = cc_lossless::decompress_f32_shuffled(&z).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
