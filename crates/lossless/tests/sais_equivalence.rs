//! SA-IS vs the retained prefix-doubling rotation sort.
//!
//! The BWT bytes must be identical for every input: equal rotations are
//! identical rows of the sort matrix, so even where the two algorithms
//! may order ties differently (periodic inputs), the transformed bytes
//! cannot differ. The primary index may legitimately differ on periodic
//! inputs, so it is compared only when all rotations are distinct, and
//! both indices are always validated through the inverse transform.

use cc_lossless::bwt::{bwt_forward, bwt_forward_doubling, bwt_inverse, suffix_array};
use proptest::prelude::*;

/// O(n² log n) oracle for the suffix array.
fn naive_suffix_array(data: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..data.len() as u32).collect();
    sa.sort_by(|&a, &b| data[a as usize..].cmp(&data[b as usize..]));
    sa
}

fn assert_equivalent(data: &[u8]) {
    let (fast, p_fast) = bwt_forward(data);
    let (slow, p_slow) = bwt_forward_doubling(data);
    assert_eq!(fast, slow, "BWT bytes differ on {} bytes", data.len());
    assert_eq!(
        bwt_inverse(&fast, p_fast).unwrap(),
        data,
        "SA-IS primary fails to invert"
    );
    assert_eq!(
        bwt_inverse(&slow, p_slow).unwrap(),
        data,
        "doubling primary fails to invert"
    );
    // All rotations distinct ⇒ a unique sort ⇒ identical primaries.
    let mut rots: Vec<Vec<u8>> = (0..data.len())
        .map(|i| {
            let mut r = data[i..].to_vec();
            r.extend_from_slice(&data[..i]);
            r
        })
        .collect();
    rots.sort();
    rots.dedup();
    if rots.len() == data.len() {
        assert_eq!(p_fast, p_slow, "primaries differ on tie-free input");
    }
}

#[test]
fn pathological_all_equal() {
    for n in [1usize, 2, 3, 7, 64, 255, 1000] {
        assert_equivalent(&vec![0xAB; n]);
        assert_equivalent(&vec![0x00; n]);
    }
}

#[test]
fn pathological_sawtooth() {
    for period in [2usize, 3, 5, 17, 255] {
        let data: Vec<u8> = (0..2000).map(|i| (i % period) as u8).collect();
        assert_equivalent(&data);
        let desc: Vec<u8> = (0..2000).map(|i| (period - 1 - i % period) as u8).collect();
        assert_equivalent(&desc);
    }
}

#[test]
fn pathological_long_runs() {
    let mut data = Vec::new();
    for (byte, len) in [(0u8, 400usize), (255, 300), (0, 200), (7, 500), (7, 1), (0, 100)] {
        data.extend(std::iter::repeat_n(byte, len));
    }
    assert_equivalent(&data);
    // Fibonacci-like string: worst case for naive LMS recursion depth.
    let (mut a, mut b) = (vec![0u8], vec![0u8, 1]);
    while b.len() < 3000 {
        let next = [b.clone(), a.clone()].concat();
        a = b;
        b = next;
    }
    assert_equivalent(&b);
}

#[test]
fn suffix_array_matches_naive_on_edges() {
    for data in [
        b"".as_slice(),
        b"a",
        b"ba",
        b"aab",
        b"banana",
        b"mississippi",
        b"abababab",
        b"zyxwvut",
    ] {
        assert_eq!(suffix_array(data), naive_suffix_array(data), "{data:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn sais_matches_naive_random(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        prop_assert_eq!(suffix_array(&data), naive_suffix_array(&data));
    }

    #[test]
    fn sais_matches_naive_small_alphabet(data in proptest::collection::vec(0u8..3, 0..500)) {
        prop_assert_eq!(suffix_array(&data), naive_suffix_array(&data));
    }

    #[test]
    fn bwt_equivalent_random(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        assert_equivalent(&data);
    }

    #[test]
    fn bwt_equivalent_runs(
        runs in proptest::collection::vec((any::<u8>(), 1usize..120), 0..20)
    ) {
        let mut data = Vec::new();
        for (byte, len) in runs {
            data.extend(std::iter::repeat_n(byte, len));
        }
        assert_equivalent(&data);
    }
}
