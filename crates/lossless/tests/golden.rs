//! Golden pins for the lossless kernels: deflate, BWT, shuffled-float
//! containers, and the raw bit-I/O primitives.
//!
//! Hashes captured from the pre-kernel-overhaul implementation
//! (u8-accumulator BitWriter, byte-loop BitReader refill, bit-at-a-time
//! Rice coding, prefix-doubling suffix sort). The word-at-a-time bit I/O
//! and the SA-IS suffix sort must reproduce every stream byte-for-byte.
//!
//! Regenerate (only after an intentional format change) with:
//! `GOLDEN_DUMP=1 cargo test -p cc-lossless --test golden -- --nocapture`

use cc_lossless::bitio::{BitReader, BitWriter};
use cc_lossless::{bwt_compress, bwt_decompress, compress, compress_f32_shuffled, Level};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Repetitive text with an aperiodic tail: exercises LZ77 matches and,
/// in the BWT, long runs whose rotation order is tie-heavy.
fn text_input() -> Vec<u8> {
    let mut v = b"the community earth system model writes history files. "
        .repeat(800)
        .to_vec();
    v.extend_from_slice(b"unique-tail-0123456789");
    v
}

/// Pseudo-random bytes (xorshift64*): near-incompressible, forces stored
/// blocks in deflate and a dense suffix alphabet in the BWT.
fn random_input(n: usize) -> Vec<u8> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let w = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        v.extend_from_slice(&w.to_le_bytes());
    }
    v.truncate(n);
    v
}

/// Little-endian bytes of a smooth float field: the shuffled-container
/// shape (long runs in high bytes, noise in low bytes).
fn float_field(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = i as f32 / n as f32;
            250.0 + 40.0 * (7.1 * x).sin() + 0.05 * ((i * 37) % 97) as f32
        })
        .collect()
}

const GOLDEN: &[(&str, u64)] = &[
    ("deflate/text/default", 0x222d3da89c6e66f0),
    ("deflate/text/fast", 0x222d3da89c6e66f0),
    ("deflate/text/best", 0x222d3da89c6e66f0),
    ("deflate/random/default", 0x479e62704e33999a),
    ("bwt/text", 0x95d8db3c378172b6),
    ("bwt/random", 0x85ba5eeed45e25bb),
    ("shuffled-f32/default", 0x797f0c884dc6b51a),
    ("bitio/mixed-widths", 0x22df3175de6edf7b),
    ("bitio/rice-sweep", 0x13c57f7bf3e64bc6),
];

fn check(dump: &mut String, name: &str, bytes: &[u8]) {
    let h = fnv1a(bytes);
    if std::env::var("GOLDEN_DUMP").is_ok() {
        dump.push_str(&format!("    (\"{name}\", {h:#018x}),\n"));
        return;
    }
    let (_, g) = GOLDEN
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no golden entry for {name}"));
    assert_eq!(h, *g, "{name}: stream bytes drifted");
}

#[test]
fn lossless_streams_are_pinned() {
    let text = text_input();
    let random = random_input(50_000);
    let floats = float_field(30_000);
    let mut dump = String::new();

    check(&mut dump, "deflate/text/default", &compress(&text, Level::Default));
    check(&mut dump, "deflate/text/fast", &compress(&text, Level::Fast));
    check(&mut dump, "deflate/text/best", &compress(&text, Level::Best));
    check(&mut dump, "deflate/random/default", &compress(&random, Level::Default));

    let bwt_text = bwt_compress(&text);
    assert_eq!(bwt_decompress(&bwt_text).unwrap(), text);
    check(&mut dump, "bwt/text", &bwt_text);
    let bwt_random = bwt_compress(&random);
    assert_eq!(bwt_decompress(&bwt_random).unwrap(), random);
    check(&mut dump, "bwt/random", &bwt_random);

    check(
        &mut dump,
        "shuffled-f32/default",
        &compress_f32_shuffled(&floats, Level::Default),
    );

    // Raw bit-level output: every width 0..=57 plus single bits and
    // mid-stream byte alignment, with patterned values.
    let mut w = BitWriter::new();
    for n in 0..=57u32 {
        let v = 0x0123_4567_89ab_cdefu64 & if n == 0 { 0 } else { u64::MAX >> (64 - n) };
        w.write_bits(v, n);
        w.write_bit(n % 3 == 0);
        if n % 13 == 0 {
            w.align_byte();
        }
    }
    check(&mut dump, "bitio/mixed-widths", &w.finish());

    // Rice streams across k values, including the 48-ones escape path.
    let mut w = BitWriter::new();
    for k in 0..=14u32 {
        for v in [0u64, 1, 2, 5, 47, 48, 49, 1000, 1 << 17, (48 << k) + 3, u64::MAX >> 9] {
            w.write_rice(v, k);
        }
    }
    let rice = w.finish();
    let mut r = BitReader::new(&rice);
    for k in 0..=14u32 {
        for v in [0u64, 1, 2, 5, 47, 48, 49, 1000, 1 << 17, (48 << k) + 3, u64::MAX >> 9] {
            assert_eq!(r.read_rice(k).unwrap(), v, "rice readback k={k}");
        }
    }
    check(&mut dump, "bitio/rice-sweep", &rice);

    if !dump.is_empty() {
        println!("const GOLDEN: &[(&str, u64)] = &[\n{dump}];");
    }
}
