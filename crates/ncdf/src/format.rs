//! Binary serialization of [`Dataset`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "CCN1"            4 bytes
//! version u8               (currently 1)
//! global attrs             attr-list
//! dims: u32 count, then { string name, u64 len }
//! vars: u32 count, then {
//!   string name, u8 dtype, u8 shuffle, u8 deflate(0=none,1=fast,2=default,3=best),
//!   u32 ndims, u32 dim-ids...,
//!   attr-list,
//!   u32 nchunks, then { u64 raw_len, u32 crc, u64 payload_len, payload }
//! }
//!
//! attr-list: u32 count, then { string name, u8 kind, value }
//!   kind 0 = text (string), 1 = f64 (8 bytes), 2 = i64 (8 bytes)
//! string: u32 length + UTF-8 bytes
//! ```

use crate::{
    AttrValue, Attribute, Chunk, DType, Dataset, Dimension, Error, FilterPipeline, Variable,
};
use cc_lossless::Level;

const MAGIC: &[u8; 4] = b"CCN1";
const VERSION: u8 = 1;

// Minimal little-endian writer helpers (the external `bytes` crate is not
// in the offline dependency set).
trait PutLe {
    fn put_slice(&mut self, s: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f64_le(&mut self, v: f64);
    fn put_i64_le(&mut self, v: i64);
}

impl PutLe for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Take `n` leading bytes off `*buf`, or error on underrun.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    if buf.len() < n {
        return Err(Error::Format("truncated"));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Serialize `ds` to bytes.
pub fn encode(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    put_attrs(&mut out, &ds.global_attrs);
    out.put_u32_le(ds.dims().len() as u32);
    for d in ds.dims() {
        put_string(&mut out, &d.name);
        out.put_u64_le(d.len as u64);
    }
    out.put_u32_le(ds.vars().len() as u32);
    for v in ds.vars() {
        put_string(&mut out, &v.name);
        out.put_u8(v.dtype.tag());
        out.put_u8(v.filters.shuffle as u8);
        out.put_u8(match v.filters.deflate {
            None => 0,
            Some(Level::Fast) => 1,
            Some(Level::Default) => 2,
            Some(Level::Best) => 3,
        });
        out.put_u32_le(v.dims.len() as u32);
        for &d in &v.dims {
            out.put_u32_le(d as u32);
        }
        put_attrs(&mut out, &v.attrs);
        out.put_u32_le(v.chunks.len() as u32);
        for c in &v.chunks {
            out.put_u64_le(c.raw_len as u64);
            out.put_u32_le(c.crc);
            out.put_u64_le(c.payload.len() as u64);
            out.put_slice(&c.payload);
        }
    }
    out
}

/// Deserialize a dataset.
pub fn decode(mut data: &[u8]) -> Result<Dataset, Error> {
    let buf = &mut data;
    if buf.len() < 5 {
        return Err(Error::Format("truncated header"));
    }
    if take(buf, 4)? != MAGIC {
        return Err(Error::Format("bad magic"));
    }
    if get_u8(buf)? != VERSION {
        return Err(Error::Format("unsupported version"));
    }
    let mut ds = Dataset::new();
    ds.global_attrs = get_attrs(buf)?;
    let ndims = get_u32(buf)? as usize;
    if ndims > 1 << 20 {
        return Err(Error::Format("implausible dimension count"));
    }
    for _ in 0..ndims {
        let name = get_string(buf)?;
        let len = get_u64(buf)? as usize;
        ds.dims_mut().push(Dimension { name, len });
    }
    let nvars = get_u32(buf)? as usize;
    if nvars > 1 << 20 {
        return Err(Error::Format("implausible variable count"));
    }
    for _ in 0..nvars {
        let name = get_string(buf)?;
        let dtype = DType::from_tag(get_u8(buf)?)?;
        let shuffle = get_u8(buf)? != 0;
        let deflate = match get_u8(buf)? {
            0 => None,
            1 => Some(Level::Fast),
            2 => Some(Level::Default),
            3 => Some(Level::Best),
            _ => return Err(Error::Format("bad deflate level tag")),
        };
        let nd = get_u32(buf)? as usize;
        if nd > 16 {
            return Err(Error::Format("implausible rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            let d = get_u32(buf)? as usize;
            if d >= ds.dims().len() {
                return Err(Error::Format("dimension id out of range"));
            }
            dims.push(d);
        }
        let attrs = get_attrs(buf)?;
        let nchunks = get_u32(buf)? as usize;
        if nchunks > 1 << 24 {
            return Err(Error::Format("implausible chunk count"));
        }
        // Every chunk record takes at least 20 header bytes, so the count
        // cannot honestly exceed remaining/20: reject instead of
        // pre-allocating 2^24 chunk headers from a corrupt count.
        if nchunks > buf.len() / 20 {
            return Err(Error::Format("chunk count exceeds remaining input"));
        }
        let mut chunks = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            let raw_len = get_u64(buf)? as usize;
            let crc = get_u32(buf)?;
            let plen = get_u64(buf)? as usize;
            let payload = take(buf, plen)
                .map_err(|_| Error::Format("truncated chunk payload"))?
                .to_vec();
            chunks.push(Chunk { payload, crc, raw_len });
        }
        ds.vars_mut().push(Variable {
            name,
            dtype,
            dims,
            attrs,
            filters: FilterPipeline { shuffle, deflate },
            chunks,
        });
    }
    Ok(ds)
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn put_attrs(out: &mut Vec<u8>, attrs: &[Attribute]) {
    out.put_u32_le(attrs.len() as u32);
    for a in attrs {
        put_string(out, &a.name);
        match &a.value {
            AttrValue::Text(s) => {
                out.put_u8(0);
                put_string(out, s);
            }
            AttrValue::F64(v) => {
                out.put_u8(1);
                out.put_f64_le(*v);
            }
            AttrValue::I64(v) => {
                out.put_u8(2);
                out.put_i64_le(*v);
            }
        }
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, Error> {
    Ok(take(buf, 1)?[0])
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, Error> {
    let b = take(buf, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, Error> {
    let b = take(buf, 8)?;
    Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, Error> {
    Ok(f64::from_bits(get_u64(buf)?))
}

fn get_i64(buf: &mut &[u8]) -> Result<i64, Error> {
    Ok(get_u64(buf)? as i64)
}

fn get_string(buf: &mut &[u8]) -> Result<String, Error> {
    let len = get_u32(buf)? as usize;
    if len > 1 << 20 || buf.len() < len {
        return Err(Error::Format("bad string length"));
    }
    let bytes = take(buf, len)?.to_vec();
    String::from_utf8(bytes).map_err(|_| Error::Format("invalid UTF-8 in string"))
}

fn get_attrs(buf: &mut &[u8]) -> Result<Vec<Attribute>, Error> {
    let n = get_u32(buf)? as usize;
    if n > 1 << 16 {
        return Err(Error::Format("implausible attribute count"));
    }
    // An attribute record is at least 9 bytes (name length + kind + the
    // smallest value); don't pre-allocate beyond what the input can hold.
    if n > buf.len() / 9 {
        return Err(Error::Format("attribute count exceeds remaining input"));
    }
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_string(buf)?;
        let value = match get_u8(buf)? {
            0 => AttrValue::Text(get_string(buf)?),
            1 => AttrValue::F64(get_f64(buf)?),
            2 => AttrValue::I64(get_i64(buf)?),
            _ => return Err(Error::Format("bad attribute kind")),
        };
        attrs.push(Attribute { name, value });
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_magic_is_stable() {
        let ds = Dataset::new();
        let bytes = encode(&ds);
        assert_eq!(&bytes[..4], b"CCN1");
        assert_eq!(bytes[4], 1);
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let ds = Dataset::new();
        let back = decode(&encode(&ds)).unwrap();
        assert!(back.dims().is_empty());
        assert!(back.vars().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&Dataset::new());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(Error::Format("bad magic"))));
    }

    #[test]
    fn rejects_truncations_everywhere() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 32);
        let v = ds
            .def_var("x", DType::F32, &[d], FilterPipeline::shuffle_deflate())
            .unwrap();
        ds.put_attr_text(Some(v), "units", "m/s");
        ds.put_f32(v, &(0..32).map(|i| i as f32).collect::<Vec<_>>()).unwrap();
        let bytes = encode(&ds);
        for cut in 0..bytes.len() {
            // Must error or produce a dataset that errors on read; never panic.
            if let Ok(back) = decode(&bytes[..cut]) {
                let _ = back.get_f32(0);
            }
        }
    }

    #[test]
    fn dim_id_out_of_range_rejected() {
        let mut ds = Dataset::new();
        ds.add_dim("n", 8);
        let v = ds.def_var("x", DType::F32, &[0], FilterPipeline::none()).unwrap();
        ds.put_f32(v, &[0.0; 8]).unwrap();
        let mut bytes = encode(&ds);
        // Find and corrupt the dim-id (fragile to do surgically; instead
        // check the decoder survives arbitrary single-byte corruption).
        for i in 5..bytes.len() {
            bytes[i] ^= 0x55;
            let _ = decode(&bytes); // must not panic
            bytes[i] ^= 0x55;
        }
    }
}
