//! A miniature NetCDF-4-like self-describing scientific data container.
//!
//! CESM writes its history files in NetCDF; the paper's lossless baseline is
//! "the lossless compression scheme that is part of the NetCDF-4 library
//! (zlib)" (Section 4.1). This crate supplies that substrate: a
//! self-describing container with named dimensions, typed variables,
//! attributes, chunked storage, and a per-variable filter pipeline
//! (HDF5-style shuffle → deflate), all backed by `cc-lossless`.
//!
//! The on-disk format is this crate's own (documented in [`mod@format`]); the
//! *behaviours* the paper relies on — per-variable lossless compression
//! ratios, fill-value conventions, float32 history data — are faithfully
//! reproduced.
//!
//! # Example
//!
//! ```
//! use cc_ncdf::{Dataset, DType, FilterPipeline};
//!
//! let mut ds = Dataset::new();
//! let ncol = ds.add_dim("ncol", 128);
//! let v = ds
//!     .def_var("TS", DType::F32, &[ncol], FilterPipeline::shuffle_deflate())
//!     .unwrap();
//! ds.put_attr_text(Some(v), "units", "K");
//! ds.put_f32(v, &vec![288.0; 128]).unwrap();
//! let bytes = ds.to_bytes();
//! let back = Dataset::from_bytes(&bytes).unwrap();
//! assert_eq!(back.get_f32(back.var_id("TS").unwrap()).unwrap()[0], 288.0);
//! ```

mod crc;
pub mod format;

pub use crc::crc32;

use cc_lossless::Level;

/// Data type of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 32-bit IEEE float (CESM history files).
    F32,
    /// 64-bit IEEE float (CESM restart files).
    F64,
    /// 32-bit signed integer.
    I32,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 => 8,
        }
    }

    fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, Error> {
        match t {
            0 => Ok(DType::F32),
            1 => Ok(DType::F64),
            2 => Ok(DType::I32),
            _ => Err(Error::Format("unknown dtype tag")),
        }
    }
}

/// An attribute value (scalar text or numerics, as in NetCDF).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Text attribute (units, long_name, ...).
    Text(String),
    /// Double-precision scalar (e.g. `_FillValue`).
    F64(f64),
    /// Integer scalar.
    I64(i64),
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: AttrValue,
}

/// Per-variable filter pipeline applied chunk by chunk on write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterPipeline {
    /// Byte-transpose before compression (HDF5 shuffle).
    pub shuffle: bool,
    /// Deflate compression level, or `None` for uncompressed storage.
    pub deflate: Option<Level>,
}

impl FilterPipeline {
    /// No filtering: raw little-endian chunks.
    pub fn none() -> Self {
        FilterPipeline { shuffle: false, deflate: None }
    }

    /// The NetCDF-4 default the paper measures: shuffle + deflate.
    pub fn shuffle_deflate() -> Self {
        FilterPipeline { shuffle: true, deflate: Some(Level::Default) }
    }

    /// Deflate without shuffle.
    pub fn deflate_only() -> Self {
        FilterPipeline { shuffle: false, deflate: Some(Level::Default) }
    }
}

/// Errors from container operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Name not found / duplicate name / shape mismatch.
    Usage(String),
    /// Structural problem in a serialized byte stream.
    Format(&'static str),
    /// Checksum mismatch on a data chunk.
    Checksum { var: String, chunk: usize },
    /// Decompression failure inside a chunk.
    Codec(cc_lossless::Error),
    /// Underlying I/O error (message form; `std::io::Error` is not `Clone`).
    Io(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Usage(m) => write!(f, "usage error: {m}"),
            Error::Format(m) => write!(f, "format error: {m}"),
            Error::Checksum { var, chunk } => {
                write!(f, "checksum mismatch in variable {var} chunk {chunk}")
            }
            Error::Codec(e) => write!(f, "codec error: {e}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<cc_lossless::Error> for Error {
    fn from(e: cc_lossless::Error) -> Self {
        Error::Codec(e)
    }
}

/// A named dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// Dimension name (e.g. `ncol`, `lev`, `time`).
    pub name: String,
    /// Length.
    pub len: usize,
}

/// Elements per storage chunk (1 MiB of f32).
pub const CHUNK_ELEMS: usize = 256 * 1024;

#[derive(Debug, Clone)]
pub(crate) struct Chunk {
    /// Filtered (possibly compressed) payload.
    pub payload: Vec<u8>,
    /// CRC32 of the payload.
    pub crc: u32,
    /// Unfiltered byte length.
    pub raw_len: usize,
}

/// A variable: definition plus (optionally) stored data chunks.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Dimension ids, slowest-varying first.
    pub dims: Vec<usize>,
    /// Variable attributes.
    pub attrs: Vec<Attribute>,
    /// Filter pipeline for its chunks.
    pub filters: FilterPipeline,
    pub(crate) chunks: Vec<Chunk>,
}

/// An in-memory dataset that serializes to/from the container format.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Global attributes.
    pub global_attrs: Vec<Attribute>,
    dims: Vec<Dimension>,
    vars: Vec<Variable>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Add a dimension; returns its id. Errors on duplicate names.
    pub fn add_dim(&mut self, name: &str, len: usize) -> usize {
        assert!(
            !self.dims.iter().any(|d| d.name == name),
            "duplicate dimension {name}"
        );
        self.dims.push(Dimension { name: name.to_string(), len });
        self.dims.len() - 1
    }

    /// All dimensions.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// All variables.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Define a variable over dimension ids; returns its id.
    pub fn def_var(
        &mut self,
        name: &str,
        dtype: DType,
        dims: &[usize],
        filters: FilterPipeline,
    ) -> Result<usize, Error> {
        if self.vars.iter().any(|v| v.name == name) {
            return Err(Error::Usage(format!("duplicate variable {name}")));
        }
        for &d in dims {
            if d >= self.dims.len() {
                return Err(Error::Usage(format!("bad dimension id {d}")));
            }
        }
        self.vars.push(Variable {
            name: name.to_string(),
            dtype,
            dims: dims.to_vec(),
            attrs: Vec::new(),
            filters,
            chunks: Vec::new(),
        });
        Ok(self.vars.len() - 1)
    }

    /// Look up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// Number of elements a variable holds (product of its dim lengths).
    pub fn var_len(&self, var: usize) -> usize {
        self.vars[var]
            .dims
            .iter()
            .map(|&d| self.dims[d].len)
            .product()
    }

    /// Attach a text attribute to a variable (`Some(id)`) or globally (`None`).
    pub fn put_attr_text(&mut self, var: Option<usize>, name: &str, value: &str) {
        let attr = Attribute { name: name.to_string(), value: AttrValue::Text(value.to_string()) };
        match var {
            Some(v) => self.vars[v].attrs.push(attr),
            None => self.global_attrs.push(attr),
        }
    }

    /// Attach a numeric attribute.
    pub fn put_attr_f64(&mut self, var: Option<usize>, name: &str, value: f64) {
        let attr = Attribute { name: name.to_string(), value: AttrValue::F64(value) };
        match var {
            Some(v) => self.vars[v].attrs.push(attr),
            None => self.global_attrs.push(attr),
        }
    }

    /// Read an attribute by name.
    pub fn attr(&self, var: Option<usize>, name: &str) -> Option<&AttrValue> {
        let attrs = match var {
            Some(v) => &self.vars[v].attrs,
            None => &self.global_attrs,
        };
        attrs.iter().find(|a| a.name == name).map(|a| &a.value)
    }

    /// Read a numeric attribute by name; `None` when absent or not `F64`.
    /// (The time-series and archive bridges key their metadata on these.)
    pub fn attr_f64(&self, var: Option<usize>, name: &str) -> Option<f64> {
        match self.attr(var, name) {
            Some(AttrValue::F64(v)) => Some(*v),
            _ => None,
        }
    }

    fn store(&mut self, var: usize, raw: &[u8]) -> Result<(), Error> {
        let _s = cc_obs::span("ncdf.store");
        let expect = self.var_len(var) * self.vars[var].dtype.size();
        if raw.len() != expect {
            return Err(Error::Usage(format!(
                "variable {}: got {} bytes, shape needs {}",
                self.vars[var].name,
                raw.len(),
                expect
            )));
        }
        let filters = self.vars[var].filters;
        let esize = self.vars[var].dtype.size();
        let chunk_bytes = CHUNK_ELEMS * esize;
        // Chunks are filtered independently, so fan them out over the
        // shared pool; par_map preserves input order (and degrades to
        // sequential inside nested parallel contexts), so the stored
        // chunk sequence is byte-identical to a sequential write.
        let slices: Vec<&[u8]> = if raw.is_empty() {
            Vec::new()
        } else {
            raw.chunks(chunk_bytes.max(1)).collect()
        };
        let chunks: Vec<Chunk> = cc_par::par_map(&slices, |slice| {
            let _c = cc_obs::span("ncdf.filter_chunk");
            let filtered = apply_filters(slice, esize, filters);
            let crc = crc32(&filtered);
            Chunk { payload: filtered, crc, raw_len: slice.len() }
        });
        cc_obs::counter_add("ncdf.chunks_stored", chunks.len() as u64);
        self.vars[var].chunks = chunks;
        Ok(())
    }

    fn load(&self, var: usize) -> Result<Vec<u8>, Error> {
        let _s = cc_obs::span("ncdf.load");
        let v = &self.vars[var];
        // The expected length comes from (possibly corrupted) metadata:
        // treat it as a hint, capped, never as a trusted allocation size.
        let expect = self.var_len(var).saturating_mul(v.dtype.size());
        // Pre-allocation is additionally capped at 16x the stored payload
        // bytes; growth past that only follows actually-decoded chunks.
        let avail: usize = v.chunks.iter().map(|c| c.payload.len()).sum();
        // Chunks verify and unfilter independently; fan them out, then
        // reassemble in order (par_map preserves it) so the result is
        // identical to a sequential read.
        let idx: Vec<usize> = (0..v.chunks.len()).collect();
        let parts: Vec<Result<Vec<u8>, Error>> = cc_par::par_map(&idx, |&i| {
            let _c = cc_obs::span("ncdf.unfilter_chunk");
            let ch = &v.chunks[i];
            if crc32(&ch.payload) != ch.crc {
                cc_obs::counter_inc("ncdf.checksum_fail");
                return Err(Error::Checksum { var: v.name.clone(), chunk: i });
            }
            remove_filters(&ch.payload, ch.raw_len, v.dtype.size(), v.filters)
        });
        let cap = avail.saturating_mul(16).min(1 << 26);
        if expect > cap {
            cc_obs::counter_inc("ncdf.alloc_cap_hits");
        }
        let mut out = Vec::with_capacity(expect.min(cap));
        for part in parts {
            out.extend_from_slice(&part?);
        }
        if out.len() != expect {
            return Err(Error::Format("variable data length mismatch"));
        }
        Ok(out)
    }

    /// Write f32 data into a variable (applies its filter pipeline).
    pub fn put_f32(&mut self, var: usize, data: &[f32]) -> Result<(), Error> {
        if self.vars[var].dtype != DType::F32 {
            return Err(Error::Usage("put_f32 on non-f32 variable".into()));
        }
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.store(var, &raw)
    }

    /// Read a variable's f32 data (verifies checksums, removes filters).
    pub fn get_f32(&self, var: usize) -> Result<Vec<f32>, Error> {
        if self.vars[var].dtype != DType::F32 {
            return Err(Error::Usage("get_f32 on non-f32 variable".into()));
        }
        let raw = self.load(var)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Write f64 data (restart-file path).
    pub fn put_f64(&mut self, var: usize, data: &[f64]) -> Result<(), Error> {
        if self.vars[var].dtype != DType::F64 {
            return Err(Error::Usage("put_f64 on non-f64 variable".into()));
        }
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.store(var, &raw)
    }

    /// Read f64 data.
    pub fn get_f64(&self, var: usize) -> Result<Vec<f64>, Error> {
        if self.vars[var].dtype != DType::F64 {
            return Err(Error::Usage("get_f64 on non-f64 variable".into()));
        }
        let raw = self.load(var)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Write i32 data.
    pub fn put_i32(&mut self, var: usize, data: &[i32]) -> Result<(), Error> {
        if self.vars[var].dtype != DType::I32 {
            return Err(Error::Usage("put_i32 on non-i32 variable".into()));
        }
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.store(var, &raw)
    }

    /// Read i32 data.
    pub fn get_i32(&self, var: usize) -> Result<Vec<i32>, Error> {
        if self.vars[var].dtype != DType::I32 {
            return Err(Error::Usage("get_i32 on non-i32 variable".into()));
        }
        let raw = self.load(var)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Read a contiguous element range `[start, start + count)` of an f32
    /// variable, decompressing only the chunks that overlap it — the
    /// hyperslab access pattern NetCDF analysis relies on.
    pub fn get_f32_range(
        &self,
        var: usize,
        start: usize,
        count: usize,
    ) -> Result<Vec<f32>, Error> {
        if self.vars[var].dtype != DType::F32 {
            return Err(Error::Usage("get_f32_range on non-f32 variable".into()));
        }
        let total = self.var_len(var);
        if start + count > total {
            return Err(Error::Usage(format!(
                "range {start}+{count} exceeds variable length {total}"
            )));
        }
        if count == 0 {
            return Ok(Vec::new());
        }
        let v = &self.vars[var];
        let esize = 4usize;
        // Capacity capped: `count` may trace back to corrupted metadata,
        // so bound it by what the stored payloads could possibly expand to.
        let avail: usize = v.chunks.iter().map(|c| c.payload.len()).sum();
        let cap = (avail.saturating_mul(16) / esize).min(1 << 24);
        if count > cap {
            cc_obs::counter_inc("ncdf.alloc_cap_hits");
        }
        let mut out = Vec::with_capacity(count.min(cap));
        let mut chunk_start_elem = 0usize;
        for (ci, ch) in v.chunks.iter().enumerate() {
            let chunk_elems = ch.raw_len / esize;
            let chunk_end = chunk_start_elem + chunk_elems;
            if chunk_end > start && chunk_start_elem < start + count {
                if crc32(&ch.payload) != ch.crc {
                    cc_obs::counter_inc("ncdf.checksum_fail");
                    return Err(Error::Checksum { var: v.name.clone(), chunk: ci });
                }
                let raw = remove_filters(&ch.payload, ch.raw_len, esize, v.filters)?;
                let lo = start.max(chunk_start_elem) - chunk_start_elem;
                let hi = (start + count).min(chunk_end) - chunk_start_elem;
                for c in raw[lo * esize..hi * esize].chunks_exact(4) {
                    out.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
                }
            }
            chunk_start_elem = chunk_end;
            if chunk_start_elem >= start + count {
                break;
            }
        }
        if out.len() != count {
            return Err(Error::Format("range read length mismatch"));
        }
        Ok(out)
    }

    /// Total stored (compressed) size of one variable's data in bytes.
    pub fn var_stored_bytes(&self, var: usize) -> usize {
        self.vars[var].chunks.iter().map(|c| c.payload.len()).sum()
    }

    /// Uncompressed size of one variable's data in bytes.
    pub fn var_raw_bytes(&self, var: usize) -> usize {
        self.var_len(var) * self.vars[var].dtype.size()
    }

    /// Serialize the dataset to bytes (see [`mod@format`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let _s = cc_obs::span("ncdf.serialize");
        format::encode(self)
    }

    /// Deserialize a dataset from bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, Error> {
        let _s = cc_obs::span("ncdf.parse");
        format::decode(data)
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), Error> {
        std::fs::write(path, self.to_bytes()).map_err(|e| Error::Io(e.to_string()))
    }

    /// Read from a file.
    pub fn open(path: &std::path::Path) -> Result<Self, Error> {
        let data = std::fs::read(path).map_err(|e| Error::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }

    pub(crate) fn dims_mut(&mut self) -> &mut Vec<Dimension> {
        &mut self.dims
    }

    pub(crate) fn vars_mut(&mut self) -> &mut Vec<Variable> {
        &mut self.vars
    }
}

fn apply_filters(raw: &[u8], esize: usize, f: FilterPipeline) -> Vec<u8> {
    let shuffled;
    let stage: &[u8] = if f.shuffle {
        shuffled = cc_lossless::shuffle(raw, esize);
        &shuffled
    } else {
        raw
    };
    match f.deflate {
        Some(level) => cc_lossless::compress(stage, level),
        None => stage.to_vec(),
    }
}

fn remove_filters(
    payload: &[u8],
    raw_len: usize,
    esize: usize,
    f: FilterPipeline,
) -> Result<Vec<u8>, Error> {
    let stage = match f.deflate {
        Some(_) => cc_lossless::decompress(payload)?,
        None => payload.to_vec(),
    };
    if stage.len() != raw_len {
        return Err(Error::Format("chunk raw length mismatch"));
    }
    Ok(if f.shuffle {
        cc_lossless::unshuffle(&stage, esize)
    } else {
        stage
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        let ncol = ds.add_dim("ncol", 100);
        let lev = ds.add_dim("lev", 4);
        let t = ds
            .def_var("T", DType::F32, &[lev, ncol], FilterPipeline::shuffle_deflate())
            .unwrap();
        ds.put_attr_text(Some(t), "units", "K");
        ds.put_attr_f64(Some(t), "_FillValue", 1.0e35);
        ds.put_attr_text(None, "source", "cc-model");
        let data: Vec<f32> = (0..400).map(|i| 250.0 + (i as f32 * 0.1).sin()).collect();
        ds.put_f32(t, &data).unwrap();
        ds
    }

    #[test]
    fn roundtrip_through_bytes() {
        let ds = sample();
        let bytes = ds.to_bytes();
        let back = Dataset::from_bytes(&bytes).unwrap();
        let t = back.var_id("T").unwrap();
        assert_eq!(back.get_f32(t).unwrap(), ds.get_f32(0).unwrap());
        assert_eq!(back.dims().len(), 2);
        assert_eq!(
            back.attr(Some(t), "units"),
            Some(&AttrValue::Text("K".into()))
        );
        assert_eq!(back.attr(None, "source"), Some(&AttrValue::Text("cc-model".into())));
    }

    #[test]
    fn roundtrip_through_file() {
        let ds = sample();
        let dir = std::env::temp_dir().join("cc_ncdf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ccn");
        ds.save(&path).unwrap();
        let back = Dataset::open(&path).unwrap();
        assert_eq!(back.get_f32(0).unwrap(), ds.get_f32(0).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn smooth_data_compresses() {
        let ds = sample();
        let stored = ds.var_stored_bytes(0);
        let raw = ds.var_raw_bytes(0);
        assert!(stored < raw, "stored {stored} raw {raw}");
    }

    #[test]
    fn filter_variants_all_roundtrip() {
        for filters in [
            FilterPipeline::none(),
            FilterPipeline::deflate_only(),
            FilterPipeline::shuffle_deflate(),
        ] {
            let mut ds = Dataset::new();
            let d = ds.add_dim("n", 1000);
            let v = ds.def_var("x", DType::F32, &[d], filters).unwrap();
            let data: Vec<f32> = (0..1000).map(|i| (i as f32).sqrt()).collect();
            ds.put_f32(v, &data).unwrap();
            let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
            assert_eq!(back.get_f32(v).unwrap(), data, "{filters:?}");
        }
    }

    #[test]
    fn f64_and_i32_variables() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 64);
        let a = ds.def_var("a", DType::F64, &[d], FilterPipeline::shuffle_deflate()).unwrap();
        let b = ds.def_var("b", DType::I32, &[d], FilterPipeline::deflate_only()).unwrap();
        let xs: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<i32> = (0..64).map(|i| i * 7 - 100).collect();
        ds.put_f64(a, &xs).unwrap();
        ds.put_i32(b, &ys).unwrap();
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(back.get_f64(a).unwrap(), xs);
        assert_eq!(back.get_i32(b).unwrap(), ys);
    }

    #[test]
    fn type_mismatch_is_usage_error() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 4);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::none()).unwrap();
        assert!(matches!(ds.put_f64(v, &[1.0; 4]), Err(Error::Usage(_))));
        ds.put_f32(v, &[1.0; 4]).unwrap();
        assert!(matches!(ds.get_i32(v), Err(Error::Usage(_))));
    }

    #[test]
    fn shape_mismatch_is_usage_error() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 4);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::none()).unwrap();
        assert!(ds.put_f32(v, &[1.0; 5]).is_err());
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 4);
        ds.def_var("x", DType::F32, &[d], FilterPipeline::none()).unwrap();
        assert!(ds.def_var("x", DType::F32, &[d], FilterPipeline::none()).is_err());
    }

    #[test]
    fn corrupt_chunk_detected_by_checksum() {
        let ds = sample();
        let mut bytes = ds.to_bytes();
        // Flip a byte near the end (inside chunk payload).
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF;
        match Dataset::from_bytes(&bytes) {
            // Either the header parse or the chunk checksum must catch it.
            Err(_) => {}
            Ok(back) => {
                assert!(back.get_f32(0).is_err(), "corruption must be detected");
            }
        }
    }

    #[test]
    fn multi_chunk_variable() {
        let mut ds = Dataset::new();
        let n = CHUNK_ELEMS + 1234;
        let d = ds.add_dim("n", n);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::shuffle_deflate()).unwrap();
        let data: Vec<f32> = (0..n).map(|i| (i % 977) as f32).collect();
        ds.put_f32(v, &data).unwrap();
        assert!(ds.vars()[v].chunks.len() >= 2);
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(back.get_f32(v).unwrap(), data);
    }

    #[test]
    fn range_reads_match_full_reads() {
        let mut ds = Dataset::new();
        let n = CHUNK_ELEMS + 5000; // spans two chunks
        let d = ds.add_dim("n", n);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::shuffle_deflate()).unwrap();
        let data: Vec<f32> = (0..n).map(|i| (i % 9973) as f32 * 0.5).collect();
        ds.put_f32(v, &data).unwrap();
        let full = ds.get_f32(v).unwrap();
        for (start, count) in [
            (0usize, 100usize),
            (CHUNK_ELEMS - 50, 100), // straddles the chunk boundary
            (CHUNK_ELEMS + 100, 4000),
            (n - 1, 1),
            (0, n),
            (17, 0),
        ] {
            let r = ds.get_f32_range(v, start, count).unwrap();
            assert_eq!(r, &full[start..start + count], "range {start}+{count}");
        }
    }

    #[test]
    fn corrupted_dimension_length_cannot_oom() {
        // Regression: a flipped bit in a dimension length must surface as
        // an error, not as a huge allocation attempt.
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 128);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::none()).unwrap();
        ds.put_f32(v, &vec![1.5; 128]).unwrap();
        let bytes = ds.to_bytes();
        // The dim length is a u64 LE right after the name "n"; find it.
        let needle = [1u8, 0, 0, 0, b'n'];
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("dim record present")
            + needle.len();
        let mut bad = bytes.clone();
        bad[pos + 6] = 0xFF; // blow the length up to ~2^55
        if let Ok(back) = Dataset::from_bytes(&bad) {
            assert!(back.get_f32(v).is_err(), "corrupt length must error");
        }
    }

    #[test]
    fn range_read_bounds_checked() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 100);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::none()).unwrap();
        ds.put_f32(v, &vec![0.0; 100]).unwrap();
        assert!(ds.get_f32_range(v, 90, 20).is_err());
    }

    #[test]
    fn empty_variable() {
        let mut ds = Dataset::new();
        let d = ds.add_dim("n", 0);
        let v = ds.def_var("x", DType::F32, &[d], FilterPipeline::shuffle_deflate()).unwrap();
        ds.put_f32(v, &[]).unwrap();
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert!(back.get_f32(v).unwrap().is_empty());
    }
}
