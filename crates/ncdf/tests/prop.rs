//! Property tests for the container: arbitrary datasets round-trip through
//! bytes, and arbitrary corruption is detected or rejected without panics.

use cc_ncdf::{AttrValue, DType, Dataset, FilterPipeline};
use proptest::prelude::*;

fn filter_strategy() -> impl Strategy<Value = FilterPipeline> {
    prop::sample::select(vec![
        FilterPipeline::none(),
        FilterPipeline::deflate_only(),
        FilterPipeline::shuffle_deflate(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_f32_dataset_roundtrips(
        data in prop::collection::vec(any::<f32>(), 0..4096),
        filters in filter_strategy(),
        attr in "[a-zA-Z][a-zA-Z0-9_]{0,20}",
    ) {
        let mut ds = Dataset::new();
        let dim = ds.add_dim("n", data.len());
        let v = ds.def_var("x", DType::F32, &[dim], filters).unwrap();
        ds.put_attr_text(Some(v), &attr, "value");
        ds.put_attr_f64(None, "seed", 1.5);
        ds.put_f32(v, &data).unwrap();

        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        let got = back.get_f32(back.var_id("x").unwrap()).unwrap();
        prop_assert_eq!(got.len(), data.len());
        for (a, b) in data.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.attr(Some(v), &attr), Some(&AttrValue::Text("value".into())));
    }

    #[test]
    fn multi_variable_datasets_roundtrip(
        lens in prop::collection::vec(0usize..500, 1..6),
        seed in any::<u64>(),
    ) {
        let mut ds = Dataset::new();
        let mut state = seed;
        let mut expect = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let dim = ds.add_dim(&format!("d{i}"), len);
            let v = ds
                .def_var(&format!("v{i}"), DType::F64, &[dim], FilterPipeline::shuffle_deflate())
                .unwrap();
            let data: Vec<f64> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 12) as f64 / (1u64 << 52) as f64
                })
                .collect();
            ds.put_f64(v, &data).unwrap();
            expect.push(data);
        }
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        for (i, data) in expect.iter().enumerate() {
            prop_assert_eq!(&back.get_f64(i).unwrap(), data);
        }
    }

    #[test]
    fn corruption_is_detected_or_rejected(
        data in prop::collection::vec(any::<f32>(), 64..512),
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut ds = Dataset::new();
        let dim = ds.add_dim("n", data.len());
        let v = ds.def_var("x", DType::F32, &[dim], FilterPipeline::shuffle_deflate()).unwrap();
        ds.put_f32(v, &data).unwrap();
        let mut bytes = ds.to_bytes();
        let i = at.index(bytes.len());
        bytes[i] ^= xor;
        // Corrupting metadata may legitimately change names/attrs, but a
        // flipped bit in chunk payloads must never yield wrong *data*
        // silently: the CRC catches it. Either parse fails, read fails, or
        // the corruption hit metadata only and the data still matches.
        if let Ok(back) = Dataset::from_bytes(&bytes) {
            if let Some(vid) = back.var_id("x") {
                if let Ok(got) = back.get_f32(vid) {
                    let same = got.len() == data.len()
                        && got.iter().zip(&data).all(|(a, b)| a.to_bits() == b.to_bits());
                    prop_assert!(same, "corrupted data returned without error");
                }
            }
        }
    }

    #[test]
    fn truncation_never_panics(
        data in prop::collection::vec(any::<f32>(), 0..256),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut ds = Dataset::new();
        let dim = ds.add_dim("n", data.len());
        let v = ds.def_var("x", DType::F32, &[dim], FilterPipeline::shuffle_deflate()).unwrap();
        ds.put_f32(v, &data).unwrap();
        let bytes = ds.to_bytes();
        let cut = cut.index(bytes.len().max(1));
        if let Ok(back) = Dataset::from_bytes(&bytes[..cut]) {
            if let Some(vid) = back.var_id("x") {
                let _ = back.get_f32(vid);
            }
        }
    }
}
